//! Trace exporters: deterministic JSONL and Chrome trace-event JSON.
//!
//! * [`jsonl`] — one JSON object per event, in record order, with a
//!   stable key order and byte-deterministic number formatting. This is
//!   the format the trace-determinism goldens compare.
//! * [`chrome_trace`] — the Chrome trace-event format (JSON object form),
//!   loadable in Perfetto / `chrome://tracing`: one track (`tid`) per
//!   super-peer, handler invocations as complete slices, messages as flow
//!   arrows between the sending and receiving slices, thresholds as
//!   counter tracks, and timers/drops/finishes as instant events.

use crate::event::{DropReason, ProtoEvent, QueryPhase, SpanCause, TraceEvent};
use crate::json::{float, Obj};

fn cause_fields(o: Obj, cause: SpanCause) -> Obj {
    match cause {
        SpanCause::Start => o.str("cause", "start"),
        SpanCause::Msg(seq) => o.str("cause", "msg").u64("cause_seq", seq),
        SpanCause::Timer(seq) => o.str("cause", "timer").u64("cause_seq", seq),
    }
}

fn drop_reason(reason: DropReason) -> &'static str {
    match reason {
        DropReason::DeadSender => "dead-sender",
        DropReason::DeadReceiver => "dead-receiver",
        DropReason::Injected => "injected",
    }
}

fn phase_name(phase: QueryPhase) -> &'static str {
    match phase {
        QueryPhase::Started => "started",
        QueryPhase::Forwarded => "forwarded",
        QueryPhase::LocalDone => "local-done",
        QueryPhase::Abandoned => "abandoned",
        QueryPhase::Finalized => "finalized",
    }
}

/// Renders one event as a single-line JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Service {
            span,
            node,
            begin,
            end,
            cause,
            dominance_tests,
            points_scanned,
            finished,
        } => cause_fields(
            Obj::new()
                .str("type", "service")
                .u64("span", span)
                .u64("node", node as u64)
                .u64("begin", begin)
                .u64("end", end),
            cause,
        )
        .u64("dominance_tests", dominance_tests)
        .u64("points_scanned", points_scanned)
        .bool("finished", finished)
        .build(),
        TraceEvent::Send { msg_seq, span, from, to, bytes, queued_at, sent_at, arrive_at } => {
            Obj::new()
                .str("type", "send")
                .u64("msg_seq", msg_seq)
                .u64("span", span)
                .u64("from", from as u64)
                .u64("to", to as u64)
                .u64("bytes", bytes)
                .u64("queued_at", queued_at)
                .u64("sent_at", sent_at)
                .u64("arrive_at", arrive_at)
                .build()
        }
        TraceEvent::Deliver { msg_seq, at, from, to } => Obj::new()
            .str("type", "deliver")
            .u64("msg_seq", msg_seq)
            .u64("at", at)
            .u64("from", from as u64)
            .u64("to", to as u64)
            .build(),
        TraceEvent::Drop { msg_seq, at, from, to, reason } => Obj::new()
            .str("type", "drop")
            .u64("msg_seq", msg_seq)
            .u64("at", at)
            .u64("from", from as u64)
            .u64("to", to as u64)
            .str("reason", drop_reason(reason))
            .build(),
        TraceEvent::TimerSet { timer_seq, span, node, fire_at, tag } => Obj::new()
            .str("type", "timer-set")
            .u64("timer_seq", timer_seq)
            .u64("span", span)
            .u64("node", node as u64)
            .u64("fire_at", fire_at)
            .u64("tag", tag)
            .build(),
        TraceEvent::TimerFire { timer_seq, at, node, tag } => Obj::new()
            .str("type", "timer-fire")
            .u64("timer_seq", timer_seq)
            .u64("at", at)
            .u64("node", node as u64)
            .u64("tag", tag)
            .build(),
        TraceEvent::Finish { span, node, at } => Obj::new()
            .str("type", "finish")
            .u64("span", span)
            .u64("node", node as u64)
            .u64("at", at)
            .build(),
        TraceEvent::Proto { span, node, at, event } => {
            let o = Obj::new()
                .str("type", "proto")
                .u64("span", span)
                .u64("node", node as u64)
                .u64("at", at);
            match event {
                ProtoEvent::ThresholdInstall { qid, value } => o
                    .str("event", "threshold-install")
                    .u64("qid", u64::from(qid))
                    .f64("value", value)
                    .build(),
                ProtoEvent::ThresholdRefine { qid, old, new } => o
                    .str("event", "threshold-refine")
                    .u64("qid", u64::from(qid))
                    .f64("old", old)
                    .f64("new", new)
                    .build(),
                ProtoEvent::Prune { qid, pruned } => {
                    o.str("event", "prune").u64("qid", u64::from(qid)).u64("pruned", pruned).build()
                }
                ProtoEvent::Phase { qid, phase } => o
                    .str("event", "phase")
                    .u64("qid", u64::from(qid))
                    .str("phase", phase_name(phase))
                    .build(),
            }
        }
    }
}

/// Renders a trace as JSONL: one event per line, trailing newline,
/// byte-deterministic for a deterministic event stream.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

/// Nanoseconds → the trace format's microsecond timestamps, rendered
/// deterministically with fixed precision.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Renders a trace in Chrome trace-event JSON (object form with a
/// `traceEvents` array), loadable in Perfetto. Super-peers appear as one
/// track each (`tid` = node id) inside a single process.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut rows: Vec<String> = Vec::new();
    rows.push(
        Obj::new()
            .str("ph", "M")
            .str("name", "process_name")
            .u64("pid", 0)
            .raw("args", &Obj::new().str("name", "skypeer").build())
            .build(),
    );
    let n_nodes = events.iter().map(|e| e.node() + 1).max().unwrap_or(0);
    for node in 0..n_nodes {
        rows.push(
            Obj::new()
                .str("ph", "M")
                .str("name", "thread_name")
                .u64("pid", 0)
                .u64("tid", node as u64)
                .raw("args", &Obj::new().str("name", &format!("SP{node}")).build())
                .build(),
        );
    }
    for ev in events {
        match *ev {
            TraceEvent::Service {
                span,
                node,
                begin,
                end,
                cause,
                dominance_tests,
                points_scanned,
                finished,
            } => {
                let name = match cause {
                    SpanCause::Start => "start",
                    SpanCause::Msg(_) => "handle-msg",
                    SpanCause::Timer(_) => "handle-timer",
                };
                let args = cause_fields(
                    Obj::new()
                        .u64("span", span)
                        .u64("dominance_tests", dominance_tests)
                        .u64("points_scanned", points_scanned)
                        .bool("finished", finished),
                    cause,
                );
                rows.push(
                    Obj::new()
                        .str("ph", "X")
                        .str("name", name)
                        .str("cat", "service")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(begin))
                        .raw("dur", &us(end - begin))
                        .raw("args", &args.build())
                        .build(),
                );
            }
            TraceEvent::Send { msg_seq, from, to, bytes, queued_at, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "s")
                        .str("name", "msg")
                        .str("cat", "msg")
                        .u64("id", msg_seq)
                        .u64("pid", 0)
                        .u64("tid", from as u64)
                        .raw("ts", &us(queued_at))
                        .raw("args", &Obj::new().u64("bytes", bytes).u64("to", to as u64).build())
                        .build(),
                );
            }
            TraceEvent::Deliver { msg_seq, at, to, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "f")
                        .str("bp", "e")
                        .str("name", "msg")
                        .str("cat", "msg")
                        .u64("id", msg_seq)
                        .u64("pid", 0)
                        .u64("tid", to as u64)
                        .raw("ts", &us(at))
                        .build(),
                );
            }
            TraceEvent::Drop { msg_seq, at, to, reason, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "t")
                        .str("name", "drop")
                        .str("cat", "msg")
                        .u64("pid", 0)
                        .u64("tid", to as u64)
                        .raw("ts", &us(at))
                        .raw(
                            "args",
                            &Obj::new()
                                .u64("msg_seq", msg_seq)
                                .str("reason", drop_reason(reason))
                                .build(),
                        )
                        .build(),
                );
            }
            TraceEvent::TimerSet { timer_seq, node, fire_at, tag, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "t")
                        .str("name", "timer-set")
                        .str("cat", "timer")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(fire_at))
                        .raw(
                            "args",
                            &Obj::new().u64("timer_seq", timer_seq).u64("tag", tag).build(),
                        )
                        .build(),
                );
            }
            TraceEvent::TimerFire { timer_seq, at, node, tag } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "t")
                        .str("name", "timer-fire")
                        .str("cat", "timer")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(at))
                        .raw(
                            "args",
                            &Obj::new().u64("timer_seq", timer_seq).u64("tag", tag).build(),
                        )
                        .build(),
                );
            }
            TraceEvent::Finish { span, node, at } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "p")
                        .str("name", "finish")
                        .str("cat", "query")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(at))
                        .raw("args", &Obj::new().u64("span", span).build())
                        .build(),
                );
            }
            TraceEvent::Proto { node, at, event, .. } => match event {
                // Threshold values become counter tracks (one per query),
                // with one series per super-peer. Infinite values (naive /
                // pre-refinement) are unrepresentable in the format and
                // skipped; the JSONL log keeps them.
                ProtoEvent::ThresholdInstall { qid, value }
                | ProtoEvent::ThresholdRefine { qid, new: value, .. } => {
                    if value.is_finite() {
                        rows.push(
                            Obj::new()
                                .str("ph", "C")
                                .str("name", &format!("threshold q{qid}"))
                                .u64("pid", 0)
                                .raw("ts", &us(at))
                                .raw(
                                    "args",
                                    &Obj::new().raw(&format!("SP{node}"), &float(value)).build(),
                                )
                                .build(),
                        );
                    }
                }
                ProtoEvent::Prune { qid, pruned } => {
                    rows.push(
                        Obj::new()
                            .str("ph", "i")
                            .str("s", "t")
                            .str("name", "prune")
                            .str("cat", "query")
                            .u64("pid", 0)
                            .u64("tid", node as u64)
                            .raw("ts", &us(at))
                            .raw(
                                "args",
                                &Obj::new()
                                    .u64("qid", u64::from(qid))
                                    .u64("pruned", pruned)
                                    .build(),
                            )
                            .build(),
                    );
                }
                ProtoEvent::Phase { qid, phase } => {
                    rows.push(
                        Obj::new()
                            .str("ph", "i")
                            .str("s", "t")
                            .str("name", &format!("phase:{}", phase_name(phase)))
                            .str("cat", "query")
                            .u64("pid", 0)
                            .u64("tid", node as u64)
                            .raw("ts", &us(at))
                            .raw("args", &Obj::new().u64("qid", u64::from(qid)).build())
                            .build(),
                    );
                }
            },
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    fn tiny_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Service {
                span: 0,
                node: 0,
                begin: 0,
                end: 1500,
                cause: SpanCause::Start,
                dominance_tests: 4,
                points_scanned: 9,
                finished: false,
            },
            TraceEvent::Send {
                msg_seq: 0,
                span: 0,
                from: 0,
                to: 1,
                bytes: 32,
                queued_at: 1500,
                sent_at: 1500,
                arrive_at: 2000,
            },
            TraceEvent::Deliver { msg_seq: 0, at: 2000, from: 0, to: 1 },
            TraceEvent::Proto {
                span: 1,
                node: 1,
                at: 2000,
                event: ProtoEvent::ThresholdInstall { qid: 3, value: f64::INFINITY },
            },
            TraceEvent::Finish { span: 1, node: 1, at: 2500 },
        ]
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_event() {
        let t = tiny_trace();
        let a = jsonl(&t);
        let b = jsonl(&t);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), t.len());
        assert!(a.starts_with(r#"{"type":"service","span":0,"node":0,"#));
        assert!(a.contains(r#""value":"inf""#), "infinity must encode as a string: {a}");
    }

    #[test]
    fn chrome_trace_has_tracks_slices_and_flows() {
        let s = chrome_trace(&tiny_trace());
        assert!(s.starts_with("{\"traceEvents\":[\n"));
        assert!(s.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(s.contains(r#""name":"thread_name""#));
        assert!(s.contains(r#""name":"SP1""#));
        assert!(s.contains(r#""ph":"X""#));
        assert!(s.contains(r#""ph":"s""#) && s.contains(r#""ph":"f""#));
        // Infinite threshold is skipped in the counter track.
        assert!(!s.contains("inf"));
        // Timestamps are µs with fixed precision: 1500 ns = 1.500 µs.
        assert!(s.contains(r#""ts":1.500"#));
    }

    #[test]
    fn every_event_kind_renders() {
        let all = vec![
            TraceEvent::Drop { msg_seq: 1, at: 5, from: 0, to: 2, reason: DropReason::Injected },
            TraceEvent::TimerSet { timer_seq: 2, span: 0, node: 1, fire_at: 50, tag: 7 },
            TraceEvent::TimerFire { timer_seq: 2, at: 50, node: 1, tag: 7 },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::Prune { qid: 1, pruned: 12 },
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::Phase { qid: 1, phase: QueryPhase::Forwarded },
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::ThresholdRefine { qid: 1, old: 9.5, new: 7.25 },
            },
        ];
        let lines = jsonl(&all);
        assert_eq!(lines.lines().count(), all.len());
        assert!(lines.contains(r#""reason":"injected""#));
        assert!(lines.contains(r#""phase":"forwarded""#));
        assert!(lines.contains(r#""old":9.5"#) && lines.contains(r#""new":7.25"#));
        let chrome = chrome_trace(&all);
        assert!(chrome.contains("timer-fire") && chrome.contains("prune"));
    }
}
