//! Log-linear HDR-style histograms with bounded relative error.
//!
//! The registry's [`Histogram`](crate::metrics::Histogram) answers "what
//! order of magnitude" with 65 power-of-two buckets; that is fine for a
//! per-query report but useless for workload percentiles — a p99 read
//! from a bucket spanning `[2^30, 2^31)` can be off by a factor of two.
//! [`HdrHistogram`] subdivides every power-of-two range into `2^precision`
//! linear sub-buckets (the classic HDR layout), so any quantile estimate
//! is within a relative error of `2^-precision` of the exact sorted-rank
//! value:
//!
//! ```text
//! exact ≤ estimate ≤ exact + (exact >> precision)
//! ```
//!
//! Values below `2^precision` are counted exactly (one bucket per value),
//! so small counts have zero error. Counts live in a sorted sparse map,
//! which keeps a histogram of nanosecond latencies small and makes
//! [`HdrHistogram::merge`] and iteration deterministic.

use std::collections::BTreeMap;

/// A log-linear histogram of `u64` samples with `2^-precision` relative
/// error on quantiles (see the module docs for the exact bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HdrHistogram {
    /// Sub-bucket bits: every `[2^e, 2^(e+1))` range is split into
    /// `2^precision` equal sub-buckets.
    precision: u32,
    /// Sparse bucket counts, keyed by bucket index (ascending = ascending
    /// value ranges).
    counts: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HdrHistogram {
    /// The default precision (7 bits → ≤ 1/128 ≈ 0.8% relative error).
    pub const DEFAULT_PRECISION: u32 = 7;

    /// An empty histogram with the given sub-bucket precision.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ precision ≤ 20` (beyond 20 bits the bucket count
    /// stops buying accuracy anyone can observe).
    pub fn new(precision: u32) -> Self {
        assert!((1..=20).contains(&precision), "precision must be in 1..=20, got {precision}");
        HdrHistogram { precision, counts: BTreeMap::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// An empty histogram at [`HdrHistogram::DEFAULT_PRECISION`].
    pub fn with_default_precision() -> Self {
        HdrHistogram::new(Self::DEFAULT_PRECISION)
    }

    /// This histogram's sub-bucket precision in bits.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// The documented quantile error bound, `2^-precision`, as a fraction.
    pub fn error_bound(&self) -> f64 {
        1.0 / (1u64 << self.precision) as f64
    }

    /// Bucket index of a value.
    fn index_of(&self, v: u64) -> u32 {
        let p = self.precision;
        if v < (1u64 << p) {
            return v as u32; // exact linear region
        }
        let e = 63 - v.leading_zeros(); // 2^e ≤ v < 2^(e+1), e ≥ p
        let shift = e - p;
        let sub = ((v >> shift) as u32) & ((1u32 << p) - 1);
        ((e - p + 1) << p) + sub
    }

    /// `[lo, hi]` value bounds of bucket `i` (inverse of `index_of`).
    fn bounds(&self, i: u32) -> (u64, u64) {
        let p = self.precision;
        if i < (1u32 << p) {
            return (u64::from(i), u64::from(i));
        }
        let g = u64::from(i >> p); // ≥ 1
        let sub = u64::from(i & ((1u32 << p) - 1));
        let e = g + u64::from(p) - 1;
        let shift = e - u64::from(p); // = g - 1
        let lo = (1u64 << e) + (sub << shift);
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(self.index_of(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Deterministic: the result depends only
    /// on the multiset of recorded samples, not on merge order. Merging
    /// an empty histogram is a no-op; merging into an empty histogram
    /// copies `other`.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ (the bucket layouts would not
    /// line up). Use [`HdrHistogram::try_merge`] for a non-panicking
    /// variant.
    pub fn merge(&mut self, other: &HdrHistogram) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HDR histograms of different precision"
        );
        self.try_merge(other).expect("precisions already checked equal");
    }

    /// Fallible [`HdrHistogram::merge`]: returns an error (and leaves
    /// `self` untouched) when the precisions differ, instead of
    /// panicking. There is no coercion between precisions — the bucket
    /// layouts do not line up, and resampling would silently widen the
    /// documented error bound.
    pub fn try_merge(&mut self, other: &HdrHistogram) -> Result<(), String> {
        if self.precision != other.precision {
            return Err(format!(
                "cannot merge HDR histograms of different precision ({} vs {})",
                self.precision, other.precision
            ));
        }
        for (&i, &c) in &other.counts {
            *self.counts.entry(i).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact-rank quantile estimate: the value at rank `⌈q·n⌉` of the
    /// sorted samples, reported as its bucket's upper bound (clamped to
    /// the recorded max). Per the bucket layout,
    /// `exact ≤ quantile(q) ≤ exact + (exact >> precision)`.
    ///
    /// `q` is clamped to `[0, 1]`; returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (&i, &c) in &self.counts {
            cumulative += c;
            if cumulative >= rank {
                let (_, hi) = self.bounds(i);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max) // unreachable: cumulative ends at self.count ≥ rank
    }

    /// The value at an arbitrary quantile `q ∈ [0, 1]` — the name the
    /// wider HDR ecosystem uses for [`HdrHistogram::quantile`]. Lets SLO
    /// budgets target any percentile (`--slo-p95-ms`), not just the
    /// pinned p50/p90/p99/p999.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        self.quantile(q)
    }

    /// The median (see [`HdrHistogram::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Occupied buckets as `(lower_bound, upper_bound, count)` triples in
    /// ascending value order.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .map(|(&i, &c)| {
                let (lo, hi) = self.bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// One-line rendering: `n=… p50=… p99=… max=…`.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} p50={} p90={} p99={} p999={} max={}",
            self.count,
            self.p50().unwrap_or(0),
            self.p90().unwrap_or(0),
            self.p99().unwrap_or(0),
            self.p999().unwrap_or(0),
            self.max
        )
    }
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::with_default_precision()
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = HdrHistogram::new(4);
        for v in 0..16u64 {
            h.record(v);
        }
        for (i, (lo, hi, c)) in h.buckets().into_iter().enumerate() {
            assert_eq!((lo, hi, c), (i as u64, i as u64, 1));
        }
        assert_eq!(h.quantile(0.5), Some(7));
    }

    #[test]
    fn bucket_indexing_is_contiguous_and_invertible() {
        let h = HdrHistogram::new(3);
        // Every value maps into a bucket whose bounds contain it, and
        // bucket indices are monotone in the value.
        let mut last_index = 0u32;
        for v in (0..4096u64).chain([u64::MAX - 1, u64::MAX]) {
            let i = h.index_of(v);
            let (lo, hi) = h.bounds(i);
            assert!(lo <= v && v <= hi, "v={v} outside bucket {i} [{lo}, {hi}]");
            assert!(i >= last_index || v >= u64::MAX - 1, "index not monotone at v={v}");
            last_index = last_index.max(i);
        }
        // Adjacent buckets tile the space with no gap.
        for i in 0..h.index_of(1 << 20) {
            let (_, hi) = h.bounds(i);
            let (lo_next, _) = h.bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
    }

    #[test]
    fn top_bucket_reaches_u64_max() {
        let h = HdrHistogram::new(7);
        let i = h.index_of(u64::MAX);
        assert_eq!(h.bounds(i).1, u64::MAX);
    }

    #[test]
    fn quantiles_track_exact_ranks_within_bound() {
        let mut h = HdrHistogram::new(7);
        let mut samples: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 11).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let est = h.quantile(q).expect("non-empty");
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            assert!(est <= exact + (exact >> 7), "q={q}: est {est} too far above {exact}");
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = HdrHistogram::new(6);
        let mut b = HdrHistogram::new(6);
        let mut all = HdrHistogram::new(6);
        for v in [3u64, 77, 1_000_000, 42] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 77, 123_456_789] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal single-pass recording");
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mismatched_precision() {
        let mut a = HdrHistogram::new(4);
        a.merge(&HdrHistogram::new(5));
    }

    #[test]
    fn try_merge_rejects_mismatched_precision_without_mutating() {
        let mut a = HdrHistogram::new(4);
        a.record(17);
        let before = a.clone();
        let mut b = HdrHistogram::new(5);
        b.record(99);
        let err = a.try_merge(&b).unwrap_err();
        assert!(err.contains("different precision"), "{err}");
        assert!(err.contains("4 vs 5"), "error names both precisions: {err}");
        assert_eq!(a, before, "failed merge must leave the target untouched");
    }

    #[test]
    fn merging_empty_is_a_no_op() {
        let mut a = HdrHistogram::new(6);
        for v in [5u64, 500, 5_000_000] {
            a.record(v);
        }
        let before = a.clone();
        a.merge(&HdrHistogram::new(6));
        assert_eq!(a, before);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(5_000_000));
    }

    #[test]
    fn merging_into_empty_copies_the_source() {
        let mut src = HdrHistogram::new(6);
        for v in [1u64, 2, 3_000] {
            src.record(v);
        }
        let mut dst = HdrHistogram::new(6);
        dst.merge(&src);
        assert_eq!(dst, src);
        // min/max sentinels of the empty target must not leak through.
        assert_eq!(dst.min(), Some(1));
        assert_eq!(dst.max(), Some(3_000));
    }

    #[test]
    fn merging_two_empties_stays_empty() {
        let mut a = HdrHistogram::new(6);
        a.merge(&HdrHistogram::new(6));
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.summary(), "n=0");
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = HdrHistogram::with_default_precision();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), "n=0");
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut h = HdrHistogram::new(7);
        h.record(123_456_789);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(123_456_789), "estimate clamps to max");
        }
    }

    #[test]
    fn precision_trades_error() {
        assert_eq!(HdrHistogram::new(1).error_bound(), 0.5);
        assert_eq!(HdrHistogram::new(7).error_bound(), 1.0 / 128.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The acceptance property: for any sample set and quantile, the
        /// HDR estimate is within the documented bucket-error bound of the
        /// exact sorted-rank value.
        #[test]
        fn quantile_estimates_respect_error_bound(
            samples in prop::collection::vec(0u64..1u64 << 48, 1..200),
            q in 0.0f64..1.0f64,
            precision in 1u32..10u32,
        ) {
            let mut h = HdrHistogram::new(precision);
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples;
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q).expect("non-empty");
            prop_assert!(est >= exact, "est {} < exact {}", est, exact);
            prop_assert!(
                est <= exact + (exact >> precision),
                "est {} above bound for exact {} at precision {}",
                est, exact, precision
            );
        }

        /// Merging any partition of a sample set — in any order, empty
        /// chunks included — preserves the total count, min, max, and sum,
        /// and equals recording everything into one histogram.
        #[test]
        fn merge_preserves_count_min_and_max(
            chunks in prop::collection::vec(
                prop::collection::vec(0u64..1u64 << 48, 0..40),
                1..6,
            ),
            precision in 1u32..10u32,
        ) {
            let mut merged = HdrHistogram::new(precision);
            let mut single = HdrHistogram::new(precision);
            let mut all: Vec<u64> = Vec::new();
            for chunk in &chunks {
                let mut part = HdrHistogram::new(precision);
                for &v in chunk {
                    part.record(v);
                    single.record(v);
                    all.push(v);
                }
                merged.merge(&part);
            }
            prop_assert_eq!(merged.count(), all.len() as u64);
            prop_assert_eq!(merged.min(), all.iter().min().copied());
            prop_assert_eq!(merged.max(), all.iter().max().copied());
            prop_assert_eq!(merged.sum(), all.iter().sum::<u64>());
            prop_assert_eq!(&merged, &single);
        }
    }
}
