//! Critical-path analysis over a recorded trace.
//!
//! The DES trace forms a DAG: a service span is caused by a message
//! (whose send span ran earlier) or a timer (armed by an earlier span),
//! and a span that starts later than its trigger arrived was queued
//! behind the previous span on the same node. [`critical_path`] walks
//! this DAG backwards from the last required `finish` and returns the
//! contiguous chain of segments — services, link queuing, transfers,
//! timer waits — whose lengths sum to the query's response time. That is
//! exactly the chain an optimisation must shorten to improve latency.

use crate::event::{SimTime, SpanCause, TraceEvent};
use std::collections::{BTreeMap, HashSet};

/// What a critical-path segment's time was spent on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepKind {
    /// A handler ran on the node.
    Service {
        /// Span id.
        span: u64,
        /// What triggered the span.
        cause: SpanCause,
        /// Dominance tests performed by the span.
        dominance_tests: u64,
        /// Points scanned by the span.
        points_scanned: u64,
    },
    /// The trigger had arrived but the node was still serving something
    /// else (only appears if the busy predecessor span cannot be found —
    /// normally the predecessor's own service segment covers this time).
    NodeQueue,
    /// A message was in flight on a link.
    Transfer {
        /// Message seq.
        msg_seq: u64,
        /// Sending node.
        from_node: usize,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// A message waited for earlier transfers on the same directed link.
    LinkQueue {
        /// Message seq.
        msg_seq: u64,
        /// Sending node.
        from_node: usize,
    },
    /// The node was waiting for a timer to expire.
    TimerWait {
        /// Timer seq.
        timer_seq: u64,
        /// Behavior-level tag.
        tag: u64,
    },
}

/// One contiguous segment of the critical path, on `node`, covering
/// `from..to` in sim-time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathStep {
    /// Node the segment is attributed to (receiver for link segments).
    pub node: usize,
    /// Segment start.
    pub from: SimTime,
    /// Segment end.
    pub to: SimTime,
    /// What the time was spent on.
    pub kind: StepKind,
}

/// The chain of segments that determined the response time.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Segments in chronological order; adjacent segments share their
    /// boundary timestamps.
    pub steps: Vec<PathStep>,
    /// Node the terminal `finish` ran on.
    pub finish_node: usize,
    /// Time of the terminal `finish` (the response time).
    pub finish_at: SimTime,
    /// Sum of segment lengths; equals `finish_at` when the chain reaches
    /// back to time zero (always, on a DES trace).
    pub total_ns: u64,
}

#[derive(Clone, Copy)]
struct Svc {
    node: usize,
    begin: SimTime,
    end: SimTime,
    cause: SpanCause,
    dominance_tests: u64,
    points_scanned: u64,
}

#[derive(Clone, Copy)]
struct SendRec {
    span: u64,
    from: usize,
    bytes: u64,
    queued_at: SimTime,
    sent_at: SimTime,
    arrive_at: SimTime,
}

impl Svc {
    fn step(&self, span: u64) -> PathStep {
        PathStep {
            node: self.node,
            from: self.begin,
            to: self.end,
            kind: StepKind::Service {
                span,
                cause: self.cause,
                dominance_tests: self.dominance_tests,
                points_scanned: self.points_scanned,
            },
        }
    }
}

/// Walks the event DAG backwards from the latest `finish` and returns the
/// critical path, or `None` if the trace contains no finish.
pub fn critical_path(events: &[TraceEvent]) -> Option<CriticalPath> {
    let mut svcs: BTreeMap<u64, Svc> = BTreeMap::new();
    let mut sends: BTreeMap<u64, SendRec> = BTreeMap::new();
    let mut timers: BTreeMap<u64, (u64, SimTime, u64)> = BTreeMap::new();
    let mut by_node_end: BTreeMap<usize, Vec<(SimTime, u64)>> = BTreeMap::new();
    let mut finish: Option<(SimTime, u64, usize)> = None;
    for ev in events {
        match *ev {
            TraceEvent::Service {
                span,
                node,
                begin,
                end,
                cause,
                dominance_tests,
                points_scanned,
                ..
            } => {
                svcs.insert(span, Svc { node, begin, end, cause, dominance_tests, points_scanned });
                by_node_end.entry(node).or_default().push((end, span));
            }
            TraceEvent::Send {
                msg_seq, span, from, bytes, queued_at, sent_at, arrive_at, ..
            } => {
                sends.insert(msg_seq, SendRec { span, from, bytes, queued_at, sent_at, arrive_at });
            }
            TraceEvent::TimerSet { timer_seq, span, fire_at, tag, .. } => {
                timers.insert(timer_seq, (span, fire_at, tag));
            }
            TraceEvent::Finish { span, node, at } => {
                let cand = (at, span, node);
                if finish.map(|f| (f.0, f.1) < (at, span)).unwrap_or(true) {
                    finish = Some(cand);
                }
            }
            _ => {}
        }
    }
    let (finish_at, finish_span, finish_node) = finish?;

    // Latest span (by id) on `node` whose service ended exactly at `t` —
    // the span the node was busy with when a trigger had to wait.
    let pred = |node: usize, t: SimTime, before: u64| -> Option<u64> {
        by_node_end
            .get(&node)?
            .iter()
            .filter(|&&(end, span)| end == t && span < before)
            .map(|&(_, span)| span)
            .max()
    };

    let mut steps = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut cur_span = finish_span;
    while let Some(cur) = svcs.get(&cur_span).copied() {
        if !visited.insert(cur_span) {
            break; // malformed trace; refuse to loop
        }
        steps.push(cur.step(cur_span));
        // The time the span's trigger became available on this node.
        let ready_at = match cur.cause {
            SpanCause::Start => 0,
            SpanCause::Msg(seq) => match sends.get(&seq) {
                Some(s) => s.arrive_at,
                None => break,
            },
            SpanCause::Timer(seq) => match timers.get(&seq) {
                Some(&(_, fire_at, _)) => fire_at,
                None => break,
            },
        };
        if cur.begin > ready_at {
            // Queued behind the node's previous span: its service segment
            // is the next link in the chain.
            match pred(cur.node, cur.begin, cur_span) {
                Some(p) => {
                    cur_span = p;
                    continue;
                }
                None => {
                    steps.push(PathStep {
                        node: cur.node,
                        from: ready_at,
                        to: cur.begin,
                        kind: StepKind::NodeQueue,
                    });
                }
            }
        }
        match cur.cause {
            SpanCause::Start => break,
            SpanCause::Msg(seq) => {
                let s = sends[&seq];
                steps.push(PathStep {
                    node: cur.node,
                    from: s.sent_at,
                    to: s.arrive_at,
                    kind: StepKind::Transfer { msg_seq: seq, from_node: s.from, bytes: s.bytes },
                });
                if s.sent_at > s.queued_at {
                    steps.push(PathStep {
                        node: cur.node,
                        from: s.queued_at,
                        to: s.sent_at,
                        kind: StepKind::LinkQueue { msg_seq: seq, from_node: s.from },
                    });
                }
                cur_span = s.span;
            }
            SpanCause::Timer(seq) => {
                let (setter, fire_at, tag) = timers[&seq];
                let set_at = svcs.get(&setter).map(|s| s.end).unwrap_or(fire_at);
                steps.push(PathStep {
                    node: cur.node,
                    from: set_at,
                    to: fire_at,
                    kind: StepKind::TimerWait { timer_seq: seq, tag },
                });
                cur_span = setter;
            }
        }
    }
    steps.reverse();
    let total_ns = steps.iter().map(|s| s.to - s.from).sum();
    Some(CriticalPath { steps, finish_node, finish_at, total_ns })
}

/// Renders a critical path as an aligned human-readable report.
pub fn render(path: &CriticalPath) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "critical path: {} segments, {} ns to finish on SP{}\n",
        path.steps.len(),
        path.finish_at,
        path.finish_node
    ));
    let w = path.finish_at.to_string().len().max(4);
    for s in &path.steps {
        let what = match s.kind {
            StepKind::Service { span, cause, dominance_tests, points_scanned } => {
                let cause = match cause {
                    SpanCause::Start => "start".to_string(),
                    SpanCause::Msg(seq) => format!("msg #{seq}"),
                    SpanCause::Timer(seq) => format!("timer #{seq}"),
                };
                format!(
                    "SP{} service #{span} ({cause}) [{dominance_tests} tests, {points_scanned} scanned]",
                    s.node
                )
            }
            StepKind::NodeQueue => format!("SP{} queued (node busy)", s.node),
            StepKind::Transfer { msg_seq, from_node, bytes } => {
                format!("SP{from_node}->SP{} transfer msg #{msg_seq} ({bytes} B)", s.node)
            }
            StepKind::LinkQueue { msg_seq, from_node } => {
                format!("SP{from_node}->SP{} link queue msg #{msg_seq}", s.node)
            }
            StepKind::TimerWait { timer_seq, tag } => {
                format!("SP{} timer wait #{timer_seq} (tag {tag})", s.node)
            }
        };
        out.push_str(&format!(
            "  {:>w$} .. {:>w$}  ({:>w$} ns)  {}\n",
            s.from,
            s.to,
            s.to - s.from,
            what,
            w = w
        ));
    }
    out.push_str(&format!("  total accounted: {} ns\n", path.total_ns));
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    fn svc(span: u64, node: usize, begin: u64, end: u64, cause: SpanCause) -> TraceEvent {
        TraceEvent::Service {
            span,
            node,
            begin,
            end,
            cause,
            dominance_tests: 1,
            points_scanned: 2,
            finished: false,
        }
    }

    #[test]
    fn chain_through_transfer_link_queue_and_timer_sums_to_finish() {
        let events = vec![
            svc(0, 0, 0, 1500, SpanCause::Start),
            TraceEvent::Send {
                msg_seq: 10,
                span: 0,
                from: 0,
                to: 1,
                bytes: 64,
                queued_at: 1500,
                sent_at: 1600,
                arrive_at: 2000,
            },
            TraceEvent::Deliver { msg_seq: 10, at: 2000, from: 0, to: 1 },
            svc(1, 1, 2000, 2600, SpanCause::Msg(10)),
            TraceEvent::TimerSet { timer_seq: 11, span: 1, node: 1, fire_at: 3000, tag: 7 },
            TraceEvent::TimerFire { timer_seq: 11, at: 3000, node: 1, tag: 7 },
            svc(2, 1, 3000, 3200, SpanCause::Timer(11)),
            TraceEvent::Finish { span: 2, node: 1, at: 3200 },
        ];
        let p = critical_path(&events).expect("has finish");
        assert_eq!(p.finish_at, 3200);
        assert_eq!(p.finish_node, 1);
        assert_eq!(p.total_ns, 3200, "contiguous back to t=0");
        let kinds: Vec<_> = p
            .steps
            .iter()
            .map(|s| match s.kind {
                StepKind::Service { span, .. } => format!("svc{span}"),
                StepKind::Transfer { msg_seq, .. } => format!("xfer{msg_seq}"),
                StepKind::LinkQueue { msg_seq, .. } => format!("lq{msg_seq}"),
                StepKind::TimerWait { timer_seq, .. } => format!("tw{timer_seq}"),
                StepKind::NodeQueue => "nq".to_string(),
            })
            .collect();
        assert_eq!(kinds, ["svc0", "lq10", "xfer10", "svc1", "tw11", "svc2"]);
        // Chronological and contiguous.
        for w in p.steps.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        let report = render(&p);
        assert!(report.contains("3200 ns to finish on SP1"));
        assert!(report.contains("transfer msg #10 (64 B)"));
    }

    #[test]
    fn busy_node_follows_predecessor_span() {
        let events = vec![
            svc(0, 0, 0, 100, SpanCause::Start),
            TraceEvent::Send {
                msg_seq: 1,
                span: 0,
                from: 0,
                to: 1,
                bytes: 8,
                queued_at: 100,
                sent_at: 100,
                arrive_at: 200,
            },
            TraceEvent::Send {
                msg_seq: 2,
                span: 0,
                from: 0,
                to: 1,
                bytes: 8,
                queued_at: 100,
                sent_at: 105,
                arrive_at: 210,
            },
            svc(1, 1, 200, 400, SpanCause::Msg(1)),
            // Arrived at 210 but the node was busy until 400.
            svc(2, 1, 400, 500, SpanCause::Msg(2)),
            TraceEvent::Finish { span: 2, node: 1, at: 500 },
        ];
        let p = critical_path(&events).expect("has finish");
        assert_eq!(p.total_ns, 500);
        assert_eq!(p.finish_at, 500);
        // The wait behind span 1 is attributed to span 1's service, not a
        // queue segment: svc0 -> xfer1 -> svc1 -> svc2.
        let spans: Vec<_> = p
            .steps
            .iter()
            .filter_map(|s| match s.kind {
                StepKind::Service { span, .. } => Some(span),
                _ => None,
            })
            .collect();
        assert_eq!(spans, [0, 1, 2]);
        assert!(!p.steps.iter().any(|s| matches!(s.kind, StepKind::NodeQueue)));
    }

    #[test]
    fn no_finish_means_no_path() {
        assert!(critical_path(&[svc(0, 0, 0, 10, SpanCause::Start)]).is_none());
    }
}
