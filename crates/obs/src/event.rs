//! The trace event model.
//!
//! Events are flat `Copy` records keyed by three id spaces that the
//! emitting runtime allocates:
//!
//! * **spans** — one id per handler invocation (`on_start`, `on_message`,
//!   `on_timer`), allocated in execution order;
//! * **message seqs** — one id per sent message, allocated at send time
//!   (the DES reuses its heap sequence numbers, so seqs also identify
//!   events uniquely within a run);
//! * **timer seqs** — one id per armed timer, from the same sequence
//!   space as messages in the DES.
//!
//! Every timestamp is the runtime's own clock: deterministic simulated
//! nanoseconds on the DES, nanoseconds since run start on the live
//! runtime. No event ever records a wall-clock date, so DES traces are
//! reproducible byte for byte.

/// Time in nanoseconds since run start (mirrors `skypeer-netsim`'s alias;
/// this crate stays dependency-free).
pub type SimTime = u64;

/// What triggered a handler invocation (a service span).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanCause {
    /// The start-of-run hook on an initiator.
    Start,
    /// Delivery of the message with this seq.
    Msg(u64),
    /// Expiry of the timer with this seq.
    Timer(u64),
}

/// Why a message never reached its handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The sender was crashed (node-failure injection) at delivery time.
    DeadSender,
    /// The receiver was crashed at delivery time.
    DeadReceiver,
    /// A failure-injection drop hook discarded it.
    Injected,
}

/// Phases of one query's lifecycle on one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryPhase {
    /// Query state installed (initiator start or first receipt).
    Started,
    /// Query forwarded to children / neighbors.
    Forwarded,
    /// Local subspace-skyline computation finished.
    LocalDone,
    /// Outstanding subtrees abandoned by the child timeout.
    Abandoned,
    /// Final answer produced (merged and sent up, or finished at the
    /// initiator).
    Finalized,
}

/// Protocol-level events emitted by the SKYPEER state machine through
/// `Context::note` (the runtimes wrap them in [`TraceEvent::Proto`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtoEvent {
    /// A threshold arrived with a query and was installed verbatim.
    ThresholdInstall {
        /// Query id.
        qid: u32,
        /// Installed threshold value (`∞` for naive runs).
        value: f64,
    },
    /// The local computation tightened (or confirmed) the threshold.
    ThresholdRefine {
        /// Query id.
        qid: u32,
        /// Threshold before the local computation.
        old: f64,
        /// Threshold after the local computation.
        new: f64,
    },
    /// Points the threshold pruned from a kernel invocation.
    Prune {
        /// Query id.
        qid: u32,
        /// Points skipped thanks to the threshold.
        pruned: u64,
    },
    /// A query phase transition on this node.
    Phase {
        /// Query id.
        qid: u32,
        /// The phase entered.
        phase: QueryPhase,
    },
}

/// One recorded event. See the module docs for the id spaces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// One handler invocation: the node was busy `begin..end` serving it.
    Service {
        /// Span id.
        span: u64,
        /// Node the handler ran on.
        node: usize,
        /// Service start (≥ the triggering event's time when queued).
        begin: SimTime,
        /// Service end (`begin` + modelled service time).
        end: SimTime,
        /// What triggered this invocation.
        cause: SpanCause,
        /// Dominance tests reported by the handler.
        dominance_tests: u64,
        /// Points scanned reported by the handler.
        points_scanned: u64,
        /// Whether the handler declared (at least one) finish.
        finished: bool,
    },
    /// A message left a node. `queued_at ≤ sent_at ≤ arrive_at`:
    /// the gap to `sent_at` is FIFO queuing behind earlier transfers on
    /// the same directed link, the rest is the transfer itself. The live
    /// runtime has no link model and reports all three equal.
    Send {
        /// Message seq.
        msg_seq: u64,
        /// Span that sent it.
        span: u64,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Wire size in bytes.
        bytes: u64,
        /// When the sending handler handed it to the link.
        queued_at: SimTime,
        /// When the link started transferring it.
        sent_at: SimTime,
        /// When it arrives at the receiver.
        arrive_at: SimTime,
    },
    /// A message reached its destination node's inbox.
    Deliver {
        /// Message seq.
        msg_seq: u64,
        /// Arrival time.
        at: SimTime,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
    },
    /// A message was discarded instead of delivered.
    Drop {
        /// Message seq.
        msg_seq: u64,
        /// When the drop happened (scheduled arrival time).
        at: SimTime,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A one-shot timer was armed.
    TimerSet {
        /// Timer seq.
        timer_seq: u64,
        /// Span that armed it.
        span: u64,
        /// Node it will fire on.
        node: usize,
        /// Expiry time.
        fire_at: SimTime,
        /// Behavior-level tag.
        tag: u64,
    },
    /// A timer expired and its handler is about to run.
    TimerFire {
        /// Timer seq.
        timer_seq: u64,
        /// Expiry time.
        at: SimTime,
        /// Node it fired on.
        node: usize,
        /// Behavior-level tag.
        tag: u64,
    },
    /// A handler called `Context::finish`.
    Finish {
        /// Span that finished.
        span: u64,
        /// Node it ran on.
        node: usize,
        /// Service-end time of that span (the response time when this is
        /// the run's last required finish).
        at: SimTime,
    },
    /// A protocol-level event (threshold, prune, phase) emitted from
    /// inside a handler.
    Proto {
        /// Span it was emitted from.
        span: u64,
        /// Node it happened on.
        node: usize,
        /// Service-begin time of that span.
        at: SimTime,
        /// The protocol event itself.
        event: ProtoEvent,
    },
}

impl TraceEvent {
    /// The node this event is primarily attributed to (the receiver for
    /// message movement events).
    pub fn node(&self) -> usize {
        match *self {
            TraceEvent::Service { node, .. }
            | TraceEvent::TimerSet { node, .. }
            | TraceEvent::TimerFire { node, .. }
            | TraceEvent::Finish { node, .. }
            | TraceEvent::Proto { node, .. } => node,
            TraceEvent::Send { from, .. } => from,
            TraceEvent::Deliver { to, .. } | TraceEvent::Drop { to, .. } => to,
        }
    }
}
