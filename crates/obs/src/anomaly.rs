//! EWMA + robust z-score anomaly detection over telemetry series.
//!
//! The detector keeps, per series, an exponentially weighted moving
//! average of the value and of its absolute deviation, and flags a
//! sample whose deviation exceeds `z_on` times the (floored) deviation
//! estimate. While an incident is active the baseline is **frozen** —
//! otherwise a sustained excursion would drag the mean toward itself and
//! self-resolve — and the incident closes with hysteresis once the
//! z-score falls below `z_off`.
//!
//! Incidents are plain data ([`Incident`]: offending series, onset tick,
//! peak deviation) with a byte-deterministic [`Incident::to_json`], so
//! the same deterministic feed (soak rows, replayed history) always
//! yields the same incident bytes — CI can golden-pin them, and a
//! same-seed baseline run reporting *any* incident is itself a gate
//! failure (false-positive guard).

use crate::json::Obj;
use std::collections::BTreeMap;

/// Tuning knobs for the [`AnomalyDetector`].
///
/// Defaults are tuned against the soak workload: wide enough that a
/// same-seed unperturbed run is quiet, tight enough that an injected
/// link-latency inflation fires within a few samples.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// EWMA smoothing factor for mean and deviation (0 < alpha ≤ 1).
    pub alpha: f64,
    /// Samples per series before detection arms; the baseline learns
    /// unconditionally until then.
    pub warmup: usize,
    /// Open an incident when `|v - mean|` exceeds `z_on` deviations.
    pub z_on: f64,
    /// Close an active incident when the z-score drops below `z_off`
    /// (hysteresis; must be ≤ `z_on`).
    pub z_off: f64,
    /// Deviation floor as a fraction of `|mean|`, so near-constant
    /// series (deviation ≈ 0) don't flag harmless jitter.
    pub min_dev_frac: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { alpha: 0.25, warmup: 16, z_on: 6.0, z_off: 3.0, min_dev_frac: 0.25 }
    }
}

/// One detected excursion on one series.
#[derive(Clone, Debug, PartialEq)]
pub struct Incident {
    /// Name of the offending series.
    pub series: String,
    /// Tick of the first sample beyond `z_on`.
    pub onset_tick: u64,
    /// Tick of the largest deviation seen so far.
    pub peak_tick: u64,
    /// Value at the peak.
    pub peak_value: f64,
    /// Z-score at the peak (deviations from the frozen baseline).
    pub peak_z: f64,
    /// The frozen baseline mean the excursion is measured against.
    pub baseline_mean: f64,
    /// Tick the incident resolved at (z back below `z_off`), if it did.
    pub end_tick: Option<u64>,
}

impl Incident {
    /// Byte-deterministic JSON object. `end_tick` is present only for
    /// resolved incidents, so open incidents are visibly open.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new()
            .str("series", &self.series)
            .u64("onset_tick", self.onset_tick)
            .u64("peak_tick", self.peak_tick)
            .f64("peak_value", self.peak_value)
            .f64("peak_z", self.peak_z)
            .f64("baseline_mean", self.baseline_mean);
        if let Some(end) = self.end_tick {
            o = o.u64("end_tick", end);
        }
        o.build()
    }

    /// One-line human rendering for banners and advisory reports.
    pub fn render(&self) -> String {
        let status = match self.end_tick {
            Some(end) => format!("resolved @{end}"),
            None => "ACTIVE".to_string(),
        };
        format!(
            "{}: onset @{} peak {:.3} (z={:.1}, baseline {:.3}) [{}]",
            self.series, self.onset_tick, self.peak_value, self.peak_z, self.baseline_mean, status
        )
    }
}

#[derive(Clone, Debug)]
struct SeriesState {
    mean: f64,
    dev: f64,
    n: usize,
    /// Index into the detector's incident list while an excursion is
    /// active on this series.
    active: Option<usize>,
}

/// Streaming multi-series anomaly detector. Feed samples in tick order
/// via [`AnomalyDetector::observe`]; read incidents at any point.
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    cfg: DetectorConfig,
    states: BTreeMap<String, SeriesState>,
    incidents: Vec<Incident>,
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        AnomalyDetector::new(DetectorConfig::default())
    }
}

impl AnomalyDetector {
    /// A detector with explicit tuning.
    pub fn new(cfg: DetectorConfig) -> Self {
        AnomalyDetector { cfg, states: BTreeMap::new(), incidents: Vec::new() }
    }

    /// Feed one sample. Samples for a given series must arrive in
    /// non-decreasing tick order (the stores feeding this are logical
    /// clocks, so they do).
    pub fn observe(&mut self, series: &str, tick: u64, value: f64) {
        let cfg = self.cfg;
        let st = self.states.entry(series.to_string()).or_insert_with(|| SeriesState {
            mean: value,
            dev: 0.0,
            n: 0,
            active: None,
        });
        if st.n < cfg.warmup {
            Self::learn(st, cfg.alpha, value);
            st.n += 1;
            return;
        }
        let floor = st.dev.max(cfg.min_dev_frac * st.mean.abs()).max(1e-9);
        let z = (value - st.mean).abs() / floor;
        match st.active {
            Some(idx) => {
                if z >= cfg.z_off {
                    // Still excursing: track the peak, keep the baseline
                    // frozen.
                    let inc = &mut self.incidents[idx];
                    if z > inc.peak_z {
                        inc.peak_z = z;
                        inc.peak_tick = tick;
                        inc.peak_value = value;
                    }
                } else {
                    self.incidents[idx].end_tick = Some(tick);
                    st.active = None;
                    Self::learn(st, cfg.alpha, value);
                }
            }
            None => {
                if z >= cfg.z_on {
                    st.active = Some(self.incidents.len());
                    self.incidents.push(Incident {
                        series: series.to_string(),
                        onset_tick: tick,
                        peak_tick: tick,
                        peak_value: value,
                        peak_z: z,
                        baseline_mean: st.mean,
                        end_tick: None,
                    });
                } else {
                    Self::learn(st, cfg.alpha, value);
                }
            }
        }
    }

    fn learn(st: &mut SeriesState, alpha: f64, value: f64) {
        let err = (value - st.mean).abs();
        st.mean += alpha * (value - st.mean);
        st.dev += alpha * (err - st.dev);
    }

    /// All incidents so far, in onset order (open ones last `end_tick`-less).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Byte-deterministic JSON array of all incidents.
    pub fn incidents_json(&self) -> String {
        crate::json::arr(self.incidents.iter().map(|i| i.to_json()))
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn steady(det: &mut AnomalyDetector, series: &str, n: usize, base: f64) {
        // Small deterministic jitter so the deviation estimate is
        // non-zero but tight.
        for i in 0..n {
            let jitter = ((i % 3) as f64 - 1.0) * 0.01 * base;
            det.observe(series, i as u64, base + jitter);
        }
    }

    #[test]
    fn quiet_series_yields_no_incidents() {
        let mut det = AnomalyDetector::default();
        steady(&mut det, "latency_ns", 200, 1e6);
        assert!(det.incidents().is_empty(), "{:?}", det.incidents());
    }

    #[test]
    fn step_change_opens_incident_with_correct_onset_and_resolution() {
        let mut det = AnomalyDetector::default();
        steady(&mut det, "latency_ns", 50, 1e6);
        // 10x inflation starting at tick 50, back to normal at 60.
        for i in 50..60u64 {
            det.observe("latency_ns", i, 1e7);
        }
        for i in 60..80u64 {
            det.observe("latency_ns", i, 1e6);
        }
        assert_eq!(det.incidents().len(), 1, "{:?}", det.incidents());
        let inc = &det.incidents()[0];
        assert_eq!(inc.series, "latency_ns");
        assert_eq!(inc.onset_tick, 50);
        assert_eq!(inc.peak_value, 1e7);
        assert!(inc.peak_z > 6.0);
        assert_eq!(inc.end_tick, Some(60), "resolves when the excursion ends");
        assert!(inc.baseline_mean < 2e6, "baseline frozen at pre-incident level");
    }

    #[test]
    fn warmup_swallow_startup_transients() {
        let mut det = AnomalyDetector::default();
        // Wildly varying first samples must not flag while warming up.
        for (i, v) in [1.0, 100.0, 3.0, 900.0, 2.0, 50.0].iter().enumerate() {
            det.observe("cold", i as u64, *v);
        }
        assert!(det.incidents().is_empty());
    }

    #[test]
    fn near_constant_series_tolerates_small_jitter() {
        let mut det = AnomalyDetector::default();
        for i in 0..100u64 {
            det.observe("queue_depth", i, 4.0);
        }
        // dev is exactly 0; the min_dev_frac floor keeps a +10% blip quiet.
        det.observe("queue_depth", 100, 4.4);
        assert!(det.incidents().is_empty());
        // A 10x excursion still fires.
        det.observe("queue_depth", 101, 40.0);
        assert_eq!(det.incidents().len(), 1);
    }

    #[test]
    fn incident_json_is_deterministic_and_marks_open_incidents() {
        let run = || {
            let mut det = AnomalyDetector::default();
            steady(&mut det, "bytes", 40, 500.0);
            det.observe("bytes", 40, 50_000.0);
            det.incidents_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"onset_tick\":40"));
        assert!(!a.contains("end_tick"), "open incident has no end_tick: {a}");
    }

    #[test]
    fn independent_series_do_not_interfere() {
        let mut det = AnomalyDetector::default();
        steady(&mut det, "a", 50, 10.0);
        steady(&mut det, "b", 50, 1000.0);
        det.observe("a", 50, 500.0);
        assert_eq!(det.incidents().len(), 1);
        assert_eq!(det.incidents()[0].series, "a");
        det.observe("b", 50, 1000.0);
        assert_eq!(det.incidents().len(), 1);
    }
}
