//! The per-query metrics registry, built from a recorded trace.
//!
//! Counters and fixed-bucket histograms over the quantities the paper's
//! evaluation argues about: dominance tests and points scanned per
//! handler, message sizes, per-hop latency, bytes per directed link, and
//! the threshold value over simulated time.

use crate::event::{ProtoEvent, SimTime, TraceEvent};
use std::collections::BTreeMap;

/// A fixed-bucket power-of-two histogram of `u64` samples.
///
/// Bucket `i` holds samples whose value needs `i` bits (`0` in bucket 0,
/// `1` in bucket 1, `2..=3` in bucket 2, …). 65 buckets cover the full
/// `u64` range, so recording never saturates or reallocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupied buckets as `(lower_bound, upper_bound, count)` triples.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0
                } else if i == 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                (lo, hi, c)
            })
            .collect()
    }

    /// One-line rendering: `n=…, mean=…, min=…, max=…`.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!("n={} mean={:.1} min={} max={}", self.count, self.mean(), self.min, self.max)
    }
}

/// Per-node aggregates of one traced run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Handler invocations served.
    pub spans: u64,
    /// Total modelled service time, ns.
    pub service_ns: u64,
    /// Messages sent / received.
    pub msgs_out: u64,
    /// Messages delivered to this node.
    pub msgs_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// Bytes received (of delivered messages).
    pub bytes_in: u64,
    /// Dominance tests performed.
    pub dominance_tests: u64,
    /// Points scanned.
    pub points_scanned: u64,
}

/// One sample of the threshold-over-time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdSample {
    /// When (span service-begin time).
    pub at: SimTime,
    /// Node that installed / refined the threshold.
    pub node: usize,
    /// Query id.
    pub qid: u32,
    /// Threshold value after the event.
    pub value: f64,
}

/// Counters, histograms, and series distilled from one trace.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    /// Scalar counters, keyed by stable names (see [`MetricsRegistry::from_events`]).
    pub counters: BTreeMap<&'static str, u64>,
    /// Service time per handler invocation, ns.
    pub service_ns: Histogram,
    /// Dominance tests per handler invocation.
    pub dominance_tests: Histogram,
    /// Points scanned per handler invocation.
    pub points_scanned: Histogram,
    /// Wire size per message, bytes.
    pub msg_bytes: Histogram,
    /// Per-hop latency (link queue + transfer), ns.
    pub hop_latency_ns: Histogram,
    /// Bytes per directed link, deterministically ordered.
    pub link_bytes: BTreeMap<(usize, usize), u64>,
    /// Threshold installs/refinements over simulated time, in trace order.
    pub thresholds: Vec<ThresholdSample>,
    /// Per-node aggregates, indexed by node id.
    pub per_node: Vec<NodeMetrics>,
    /// Peak number of messages delivered to a node but not yet being
    /// served, indexed by node id — the inbox backlog a slow node builds
    /// up. 0 everywhere on an uncontended run.
    pub peak_queue_depth: Vec<u64>,
}

impl MetricsRegistry {
    /// Distills a recorded trace into the registry.
    ///
    /// Counter keys: `spans`, `messages_sent`, `messages_delivered`,
    /// `messages_dropped`, `bytes_sent`, `dominance_tests`,
    /// `points_scanned`, `timers_set`, `timers_fired`, `finishes`,
    /// `threshold_installs`, `threshold_refines`, `pruned_points`.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut m = MetricsRegistry::default();
        let bump = |reg: &mut BTreeMap<&'static str, u64>, k: &'static str, by: u64| {
            *reg.entry(k).or_insert(0) += by;
        };
        let n_nodes = events.iter().map(|e| e.node() + 1).max().unwrap_or(0);
        m.per_node = vec![NodeMetrics::default(); n_nodes];
        for ev in events {
            match *ev {
                TraceEvent::Service {
                    node, begin, end, dominance_tests, points_scanned, ..
                } => {
                    bump(&mut m.counters, "spans", 1);
                    bump(&mut m.counters, "dominance_tests", dominance_tests);
                    bump(&mut m.counters, "points_scanned", points_scanned);
                    m.service_ns.record(end - begin);
                    m.dominance_tests.record(dominance_tests);
                    m.points_scanned.record(points_scanned);
                    let pn = &mut m.per_node[node];
                    pn.spans += 1;
                    pn.service_ns += end - begin;
                    pn.dominance_tests += dominance_tests;
                    pn.points_scanned += points_scanned;
                }
                TraceEvent::Send { from, to, bytes, queued_at, arrive_at, .. } => {
                    bump(&mut m.counters, "messages_sent", 1);
                    bump(&mut m.counters, "bytes_sent", bytes);
                    m.msg_bytes.record(bytes);
                    m.hop_latency_ns.record(arrive_at - queued_at);
                    *m.link_bytes.entry((from, to)).or_insert(0) += bytes;
                    m.per_node[from].msgs_out += 1;
                    m.per_node[from].bytes_out += bytes;
                    m.per_node[to].bytes_in += bytes;
                }
                TraceEvent::Deliver { to, .. } => {
                    bump(&mut m.counters, "messages_delivered", 1);
                    m.per_node[to].msgs_in += 1;
                }
                TraceEvent::Drop { .. } => bump(&mut m.counters, "messages_dropped", 1),
                TraceEvent::TimerSet { .. } => bump(&mut m.counters, "timers_set", 1),
                TraceEvent::TimerFire { .. } => bump(&mut m.counters, "timers_fired", 1),
                TraceEvent::Finish { .. } => bump(&mut m.counters, "finishes", 1),
                TraceEvent::Proto { node, at, event, .. } => match event {
                    ProtoEvent::ThresholdInstall { qid, value } => {
                        bump(&mut m.counters, "threshold_installs", 1);
                        m.thresholds.push(ThresholdSample { at, node, qid, value });
                    }
                    ProtoEvent::ThresholdRefine { qid, new, .. } => {
                        bump(&mut m.counters, "threshold_refines", 1);
                        m.thresholds.push(ThresholdSample { at, node, qid, value: new });
                    }
                    ProtoEvent::Prune { pruned, .. } => {
                        bump(&mut m.counters, "pruned_points", pruned);
                    }
                    ProtoEvent::Phase { .. } => {}
                },
            }
        }
        // Make headline counters present even when zero, so reports have a
        // stable shape.
        for k in ["spans", "messages_sent", "messages_delivered", "messages_dropped", "finishes"] {
            m.counters.entry(k).or_insert(0);
        }
        m.peak_queue_depth = peak_queue_depths(events, n_nodes);
        m
    }

    /// Adds `by` to counter `k`, creating it at zero first. This is how
    /// subsystems that are not part of the trace — e.g. a result cache at
    /// the initiator — contribute counters to the same registry (and
    /// therefore to the same Prometheus exposition).
    pub fn bump(&mut self, k: &'static str, by: u64) {
        *self.counters.entry(k).or_insert(0) += by;
    }

    /// The largest inbox backlog any node reached (see
    /// [`MetricsRegistry::peak_queue_depth`]).
    pub fn max_queue_depth(&self) -> u64 {
        self.peak_queue_depth.iter().copied().max().unwrap_or(0)
    }

    /// The directed link that carried the most bytes (smallest link wins
    /// ties, deterministically).
    pub fn hottest_link(&self) -> Option<((usize, usize), u64)> {
        use std::cmp::Reverse;
        self.link_bytes.iter().map(|(&l, &b)| (l, b)).max_by_key(|&(l, b)| (b, Reverse(l)))
    }

    /// The node with the most service time (smallest id wins ties).
    pub fn hottest_node(&self) -> Option<(usize, u64)> {
        use std::cmp::Reverse;
        self.per_node
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.service_ns))
            .max_by_key(|&(i, ns)| (ns, Reverse(i)))
    }
}

/// Per-node peak of "delivered but not yet being served".
///
/// Each message waits on its receiver from its `Deliver` timestamp until
/// the service span it causes begins; a message never serviced (run cut
/// short) waits forever. A sweep over those intervals — departures
/// processed before arrivals at equal timestamps, so an immediately
/// served message contributes no backlog — yields the peak concurrent
/// backlog per node.
fn peak_queue_depths(events: &[TraceEvent], n_nodes: usize) -> Vec<u64> {
    use crate::event::SpanCause;
    let mut deliver_at: BTreeMap<u64, (usize, SimTime)> = BTreeMap::new();
    let mut marks: Vec<Vec<(SimTime, i64)>> = vec![Vec::new(); n_nodes];
    for ev in events {
        match *ev {
            TraceEvent::Deliver { msg_seq, at, to, .. } => {
                deliver_at.insert(msg_seq, (to, at));
                marks[to].push((at, 1));
            }
            TraceEvent::Service { node, begin, cause: SpanCause::Msg(seq), .. } => {
                if let Some(&(to, _)) = deliver_at.get(&seq) {
                    if to == node {
                        marks[node].push((begin, -1));
                    }
                }
            }
            _ => {}
        }
    }
    marks
        .into_iter()
        .map(|mut ms| {
            // (time, -1) sorts before (time, +1): departures first.
            ms.sort_unstable();
            let mut depth: i64 = 0;
            let mut peak: i64 = 0;
            for (_, delta) in ms {
                depth += delta;
                peak = peak.max(depth);
            }
            peak as u64
        })
        .collect()
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::event::{QueryPhase, SpanCause};

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let buckets = h.buckets();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
        // 1000 → bucket 10 (512..=1023).
        assert_eq!(buckets, vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 1), (512, 1023, 1)]);
        assert!(h.summary().starts_with("n=6"));
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn registry_aggregates_a_tiny_trace() {
        let events = vec![
            TraceEvent::Service {
                span: 0,
                node: 0,
                begin: 0,
                end: 100,
                cause: SpanCause::Start,
                dominance_tests: 5,
                points_scanned: 10,
                finished: false,
            },
            TraceEvent::Send {
                msg_seq: 0,
                span: 0,
                from: 0,
                to: 1,
                bytes: 64,
                queued_at: 100,
                sent_at: 100,
                arrive_at: 300,
            },
            TraceEvent::Deliver { msg_seq: 0, at: 300, from: 0, to: 1 },
            TraceEvent::Service {
                span: 1,
                node: 1,
                begin: 300,
                end: 450,
                cause: SpanCause::Msg(0),
                dominance_tests: 7,
                points_scanned: 3,
                finished: true,
            },
            TraceEvent::Proto {
                span: 1,
                node: 1,
                at: 300,
                event: ProtoEvent::ThresholdRefine { qid: 9, old: 5.0, new: 4.0 },
            },
            TraceEvent::Proto {
                span: 1,
                node: 1,
                at: 300,
                event: ProtoEvent::Phase { qid: 9, phase: QueryPhase::LocalDone },
            },
            TraceEvent::Finish { span: 1, node: 1, at: 450 },
        ];
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.counters["spans"], 2);
        assert_eq!(m.counters["messages_sent"], 1);
        assert_eq!(m.counters["bytes_sent"], 64);
        assert_eq!(m.counters["dominance_tests"], 12);
        assert_eq!(m.counters["finishes"], 1);
        assert_eq!(m.counters["messages_dropped"], 0);
        assert_eq!(m.link_bytes[&(0, 1)], 64);
        assert_eq!(m.hop_latency_ns.max(), Some(200));
        assert_eq!(m.per_node.len(), 2);
        assert_eq!(m.per_node[0].msgs_out, 1);
        assert_eq!(m.per_node[1].msgs_in, 1);
        assert_eq!(m.per_node[1].service_ns, 150);
        assert_eq!(m.thresholds.len(), 1);
        assert_eq!(m.thresholds[0].value, 4.0);
        assert_eq!(m.hottest_node(), Some((1, 150)));
        assert_eq!(m.hottest_link(), Some(((0, 1), 64)));
    }

    fn msg_service(node: usize, seq: u64, begin: u64) -> TraceEvent {
        TraceEvent::Service {
            span: seq,
            node,
            begin,
            end: begin + 50,
            cause: SpanCause::Msg(seq),
            dominance_tests: 0,
            points_scanned: 0,
            finished: false,
        }
    }

    #[test]
    fn queue_depth_counts_waiting_messages() {
        // Node 1: three messages land at t=0/10/20 but are served
        // back-to-back starting at t=100 — backlog peaks at 3. Node 0
        // serves its one message the instant it arrives — no backlog.
        let events = vec![
            TraceEvent::Deliver { msg_seq: 1, at: 0, from: 0, to: 1 },
            TraceEvent::Deliver { msg_seq: 2, at: 10, from: 0, to: 1 },
            TraceEvent::Deliver { msg_seq: 3, at: 20, from: 0, to: 1 },
            msg_service(1, 1, 100),
            msg_service(1, 2, 150),
            msg_service(1, 3, 200),
            TraceEvent::Deliver { msg_seq: 4, at: 30, from: 1, to: 0 },
            msg_service(0, 4, 30),
        ];
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.peak_queue_depth, vec![0, 3]);
        assert_eq!(m.max_queue_depth(), 3);
    }

    #[test]
    fn queue_depth_of_unserviced_message_persists() {
        // A message that is delivered but never served counts as backlog.
        let events = vec![
            TraceEvent::Deliver { msg_seq: 1, at: 40, from: 0, to: 1 },
            TraceEvent::Deliver { msg_seq: 2, at: 50, from: 0, to: 1 },
            msg_service(1, 1, 60),
        ];
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.peak_queue_depth, vec![0, 2]);
    }

    #[test]
    fn hottest_ties_break_deterministically() {
        let mut m = MetricsRegistry {
            per_node: vec![NodeMetrics { service_ns: 7, ..Default::default() }; 3],
            ..Default::default()
        };
        assert_eq!(m.hottest_node(), Some((0, 7)));
        m.link_bytes.insert((2, 0), 9);
        m.link_bytes.insert((1, 5), 9);
        assert_eq!(m.hottest_link(), Some(((1, 5), 9)));
    }
}
