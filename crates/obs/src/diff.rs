//! Regression root-cause analysis: trace digests, delta attribution,
//! and counterfactual (what-if) critical-path analysis.
//!
//! The pipeline has three layers:
//!
//! 1. [`TraceDigest`] — a compact, byte-deterministic aggregation of one
//!    trace run, keyed by the stable identities that survive across runs
//!    (protocol phase, super-peer id, directed link). Digests are cheap
//!    to pin next to a benchmark baseline.
//! 2. [`AttributionReport::attribute`] — aligns two digests (baseline vs
//!    candidate) and decomposes the deltas in `sim_time_ns`,
//!    `total_bytes`, `dominance_tests`, and peak queue depth down to the
//!    phase/node/link responsible, sorted by |delta|, with a human table
//!    ([`AttributionReport::render`]) and deterministic JSON
//!    ([`AttributionReport::to_json`]).
//! 3. [`rank_interventions`] — causal-profiling-style what-if analysis
//!    over a [`CriticalPath`]: for every node and directed link on the
//!    path, predict the critical-path nanoseconds saved if that node's
//!    service time (or that link's latency/bandwidth) were scaled by a
//!    factor, and rank interventions by predicted saving. A no-op scale
//!    (factor `1.0`) predicts exactly zero.

use crate::critical::{CriticalPath, StepKind};
use crate::event::{ProtoEvent, QueryPhase, TraceEvent};
use crate::json::{self, float, Obj};
use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;

/// Phase label for service spans that run before any protocol phase
/// transition has been observed on their node.
pub const PRE_PHASE: &str = "(pre-start)";

fn phase_label(phase: QueryPhase) -> &'static str {
    match phase {
        QueryPhase::Started => "started",
        QueryPhase::Forwarded => "forwarded",
        QueryPhase::LocalDone => "local-done",
        QueryPhase::Abandoned => "abandoned",
        QueryPhase::Finalized => "finalized",
    }
}

/// Canonical ordering of phase labels in digests and reports: protocol
/// lifecycle order, with [`PRE_PHASE`] first and unknown labels last
/// (alphabetically).
fn phase_rank(label: &str) -> (usize, &str) {
    const ORDER: [&str; 6] =
        [PRE_PHASE, "started", "forwarded", "local-done", "abandoned", "finalized"];
    match ORDER.iter().position(|&p| p == label) {
        Some(i) => (i, ""),
        None => (ORDER.len(), label),
    }
}

/// Per-phase aggregation of service work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Phase label (see [`PRE_PHASE`] and the `QueryPhase` names).
    pub phase: String,
    /// Service spans attributed to the phase.
    pub spans: u64,
    /// Total service time in the phase, ns.
    pub service_ns: u64,
    /// Dominance tests performed in the phase.
    pub dominance_tests: u64,
}

/// Per-super-peer aggregation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeAgg {
    /// Super-peer id.
    pub node: usize,
    /// Service spans run on the node.
    pub spans: u64,
    /// Total service time on the node, ns.
    pub service_ns: u64,
    /// Dominance tests performed on the node.
    pub dominance_tests: u64,
    /// Bytes sent by the node.
    pub bytes_out: u64,
    /// Peak inbound queue depth observed on the node.
    pub peak_queue_depth: u64,
}

/// Per-directed-link aggregation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkAgg {
    /// Sending super-peer.
    pub from: usize,
    /// Receiving super-peer.
    pub to: usize,
    /// Messages carried.
    pub messages: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Total in-flight time (arrive − sent, summed over messages), ns.
    pub transfer_ns: u64,
}

/// A compact, byte-deterministic aggregation of one trace run, keyed by
/// the stable span keys (phase, super-peer, directed link) that survive
/// across runs of the same workload.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TraceDigest {
    /// Response time: the latest `finish` timestamp (falls back to the
    /// latest event timestamp if the trace has no finish).
    pub sim_time_ns: u64,
    /// Total bytes sent.
    pub total_bytes: u64,
    /// Total dominance tests.
    pub dominance_tests: u64,
    /// Peak inbound queue depth across all nodes.
    pub peak_queue_depth: u64,
    /// Per-phase service aggregation, in lifecycle order.
    pub phases: Vec<PhaseAgg>,
    /// Per-node aggregation, sorted by node id.
    pub nodes: Vec<NodeAgg>,
    /// Per-directed-link aggregation, sorted by `(from, to)`.
    pub links: Vec<LinkAgg>,
}

impl TraceDigest {
    /// Builds a digest from a recorded event stream.
    ///
    /// Phase attribution: a service span belongs to the most recent
    /// protocol phase entered on its node — including a phase the span
    /// itself transitions into (its `Proto` notes carry the span id).
    /// Spans running before any transition land in [`PRE_PHASE`].
    pub fn from_events(events: &[TraceEvent]) -> TraceDigest {
        // A span's own (last) phase transition, if it made one.
        let mut span_phase: BTreeMap<u64, &'static str> = BTreeMap::new();
        for ev in events {
            if let TraceEvent::Proto { span, event: ProtoEvent::Phase { phase, .. }, .. } = *ev {
                span_phase.insert(span, phase_label(phase));
            }
        }

        let mut phases: BTreeMap<&str, PhaseAgg> = BTreeMap::new();
        let mut nodes: BTreeMap<usize, NodeAgg> = BTreeMap::new();
        let mut links: BTreeMap<(usize, usize), LinkAgg> = BTreeMap::new();
        let mut node_phase: BTreeMap<usize, &'static str> = BTreeMap::new();
        let mut total_bytes = 0u64;
        let mut dom_total = 0u64;
        let mut last_finish: Option<u64> = None;
        let mut max_t = 0u64;

        for ev in events {
            match *ev {
                TraceEvent::Service { span, node, begin, end, dominance_tests, .. } => {
                    let label = span_phase
                        .get(&span)
                        .copied()
                        .or_else(|| node_phase.get(&node).copied())
                        .unwrap_or(PRE_PHASE);
                    let p = phases.entry(label).or_insert_with(|| PhaseAgg {
                        phase: label.to_string(),
                        spans: 0,
                        service_ns: 0,
                        dominance_tests: 0,
                    });
                    p.spans += 1;
                    p.service_ns += end - begin;
                    p.dominance_tests += dominance_tests;
                    let n = nodes.entry(node).or_insert_with(|| NodeAgg {
                        node,
                        spans: 0,
                        service_ns: 0,
                        dominance_tests: 0,
                        bytes_out: 0,
                        peak_queue_depth: 0,
                    });
                    n.spans += 1;
                    n.service_ns += end - begin;
                    n.dominance_tests += dominance_tests;
                    dom_total += dominance_tests;
                    if let Some(&own) = span_phase.get(&span) {
                        node_phase.insert(node, own);
                    }
                    max_t = max_t.max(end);
                }
                TraceEvent::Send { from, to, bytes, sent_at, arrive_at, .. } => {
                    total_bytes += bytes;
                    let n = nodes.entry(from).or_insert_with(|| NodeAgg {
                        node: from,
                        spans: 0,
                        service_ns: 0,
                        dominance_tests: 0,
                        bytes_out: 0,
                        peak_queue_depth: 0,
                    });
                    n.bytes_out += bytes;
                    let l = links.entry((from, to)).or_insert_with(|| LinkAgg {
                        from,
                        to,
                        messages: 0,
                        bytes: 0,
                        transfer_ns: 0,
                    });
                    l.messages += 1;
                    l.bytes += bytes;
                    l.transfer_ns += arrive_at - sent_at;
                    max_t = max_t.max(arrive_at);
                }
                TraceEvent::Deliver { at, .. }
                | TraceEvent::Drop { at, .. }
                | TraceEvent::TimerFire { at, .. }
                | TraceEvent::Proto { at, .. } => max_t = max_t.max(at),
                TraceEvent::TimerSet { fire_at, .. } => max_t = max_t.max(fire_at),
                TraceEvent::Finish { at, .. } => {
                    last_finish = Some(last_finish.map_or(at, |f| f.max(at)));
                    max_t = max_t.max(at);
                }
            }
        }

        // Queue depths come from the metrics sweep (one source of truth
        // for the departure-before-arrival tie-break).
        let reg = MetricsRegistry::from_events(events);
        for (node, &depth) in reg.peak_queue_depth.iter().enumerate() {
            if let Some(n) = nodes.get_mut(&node) {
                n.peak_queue_depth = depth;
            }
        }

        let mut phase_rows: Vec<PhaseAgg> = phases.into_values().collect();
        phase_rows.sort_by(|a, b| phase_rank(&a.phase).cmp(&phase_rank(&b.phase)));
        TraceDigest {
            sim_time_ns: last_finish.unwrap_or(max_t),
            total_bytes,
            dominance_tests: dom_total,
            peak_queue_depth: reg.peak_queue_depth.iter().copied().max().unwrap_or(0),
            phases: phase_rows,
            nodes: nodes.into_values().collect(),
            links: links.into_values().collect(),
        }
    }

    /// Deterministic JSON object (via [`crate::json`]); stable key and
    /// row order, byte-identical for equal digests.
    pub fn to_json(&self) -> String {
        let phases = json::arr(self.phases.iter().map(|p| {
            Obj::new()
                .str("phase", &p.phase)
                .u64("spans", p.spans)
                .u64("service_ns", p.service_ns)
                .u64("dominance_tests", p.dominance_tests)
                .build()
        }));
        let nodes = json::arr(self.nodes.iter().map(|n| {
            Obj::new()
                .u64("node", n.node as u64)
                .u64("spans", n.spans)
                .u64("service_ns", n.service_ns)
                .u64("dominance_tests", n.dominance_tests)
                .u64("bytes_out", n.bytes_out)
                .u64("peak_queue_depth", n.peak_queue_depth)
                .build()
        }));
        let links = json::arr(self.links.iter().map(|l| {
            Obj::new()
                .u64("from", l.from as u64)
                .u64("to", l.to as u64)
                .u64("messages", l.messages)
                .u64("bytes", l.bytes)
                .u64("transfer_ns", l.transfer_ns)
                .build()
        }));
        Obj::new()
            .u64("sim_time_ns", self.sim_time_ns)
            .u64("total_bytes", self.total_bytes)
            .u64("dominance_tests", self.dominance_tests)
            .u64("peak_queue_depth", self.peak_queue_depth)
            .raw("phases", &phases)
            .raw("nodes", &nodes)
            .raw("links", &links)
            .build()
    }
}

/// One scope's (phase / node / link) share of a metric delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contribution {
    /// `"phase"`, `"node"`, or `"link"`.
    pub scope: &'static str,
    /// Stable key: phase label, `SPn`, or `SPa->SPb`.
    pub key: String,
    /// Baseline value.
    pub baseline: u64,
    /// Candidate value.
    pub candidate: u64,
}

impl Contribution {
    /// Signed delta, candidate − baseline.
    pub fn delta(&self) -> i64 {
        self.candidate as i64 - self.baseline as i64
    }
}

/// The decomposition of one top-level metric's delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricAttribution {
    /// Metric name (`sim_time_ns`, `total_bytes`, `dominance_tests`,
    /// `peak_queue_depth`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: u64,
    /// Candidate value.
    pub candidate: u64,
    /// Non-zero contributions, sorted by |delta| descending (then scope,
    /// then key, for determinism).
    pub contributions: Vec<Contribution>,
}

impl MetricAttribution {
    /// Signed delta, candidate − baseline.
    pub fn delta(&self) -> i64 {
        self.candidate as i64 - self.baseline as i64
    }
}

/// A hierarchical baseline-vs-candidate attribution report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributionReport {
    /// One entry per top-level metric, in fixed order.
    pub metrics: Vec<MetricAttribution>,
}

/// Pairs up `(key, value)` rows from two digests and keeps the rows
/// whose values differ.
fn paired(
    scope: &'static str,
    base: impl Iterator<Item = (String, u64)>,
    cand: impl Iterator<Item = (String, u64)>,
) -> Vec<Contribution> {
    let mut m: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (k, v) in base {
        m.entry(k).or_insert((0, 0)).0 += v;
    }
    for (k, v) in cand {
        m.entry(k).or_insert((0, 0)).1 += v;
    }
    m.into_iter()
        .filter(|&(_, (b, c))| b != c)
        .map(|(key, (baseline, candidate))| Contribution { scope, key, baseline, candidate })
        .collect()
}

fn sort_contributions(mut rows: Vec<Contribution>) -> Vec<Contribution> {
    rows.sort_by(|a, b| {
        b.delta()
            .unsigned_abs()
            .cmp(&a.delta().unsigned_abs())
            .then_with(|| a.scope.cmp(b.scope))
            .then_with(|| a.key.cmp(&b.key))
    });
    rows
}

fn node_key(node: usize) -> String {
    format!("SP{node}")
}

fn link_key(from: usize, to: usize) -> String {
    format!("SP{from}->SP{to}")
}

impl AttributionReport {
    /// Aligns two digests by their stable keys and decomposes every
    /// top-level metric delta down to the phase/node/link responsible.
    pub fn attribute(baseline: &TraceDigest, candidate: &TraceDigest) -> AttributionReport {
        let phase_rows = |d: &TraceDigest, f: fn(&PhaseAgg) -> u64| {
            d.phases.iter().map(move |p| (p.phase.clone(), f(p))).collect::<Vec<_>>()
        };
        let node_rows = |d: &TraceDigest, f: fn(&NodeAgg) -> u64| {
            d.nodes.iter().map(move |n| (node_key(n.node), f(n))).collect::<Vec<_>>()
        };
        let link_rows = |d: &TraceDigest, f: fn(&LinkAgg) -> u64| {
            d.links.iter().map(move |l| (link_key(l.from, l.to), f(l))).collect::<Vec<_>>()
        };

        let mut time = paired(
            "phase",
            phase_rows(baseline, |p| p.service_ns).into_iter(),
            phase_rows(candidate, |p| p.service_ns).into_iter(),
        );
        time.extend(paired(
            "node",
            node_rows(baseline, |n| n.service_ns).into_iter(),
            node_rows(candidate, |n| n.service_ns).into_iter(),
        ));
        time.extend(paired(
            "link",
            link_rows(baseline, |l| l.transfer_ns).into_iter(),
            link_rows(candidate, |l| l.transfer_ns).into_iter(),
        ));

        let mut bytes = paired(
            "link",
            link_rows(baseline, |l| l.bytes).into_iter(),
            link_rows(candidate, |l| l.bytes).into_iter(),
        );
        bytes.extend(paired(
            "node",
            node_rows(baseline, |n| n.bytes_out).into_iter(),
            node_rows(candidate, |n| n.bytes_out).into_iter(),
        ));

        let mut dom = paired(
            "phase",
            phase_rows(baseline, |p| p.dominance_tests).into_iter(),
            phase_rows(candidate, |p| p.dominance_tests).into_iter(),
        );
        dom.extend(paired(
            "node",
            node_rows(baseline, |n| n.dominance_tests).into_iter(),
            node_rows(candidate, |n| n.dominance_tests).into_iter(),
        ));

        let depth = paired(
            "node",
            node_rows(baseline, |n| n.peak_queue_depth).into_iter(),
            node_rows(candidate, |n| n.peak_queue_depth).into_iter(),
        );

        AttributionReport {
            metrics: vec![
                MetricAttribution {
                    metric: "sim_time_ns",
                    baseline: baseline.sim_time_ns,
                    candidate: candidate.sim_time_ns,
                    contributions: sort_contributions(time),
                },
                MetricAttribution {
                    metric: "total_bytes",
                    baseline: baseline.total_bytes,
                    candidate: candidate.total_bytes,
                    contributions: sort_contributions(bytes),
                },
                MetricAttribution {
                    metric: "dominance_tests",
                    baseline: baseline.dominance_tests,
                    candidate: candidate.dominance_tests,
                    contributions: sort_contributions(dom),
                },
                MetricAttribution {
                    metric: "peak_queue_depth",
                    baseline: baseline.peak_queue_depth,
                    candidate: candidate.peak_queue_depth,
                    contributions: sort_contributions(depth),
                },
            ],
        }
    }

    /// `true` iff every metric delta is zero and nothing contributed —
    /// the two runs are indistinguishable at digest granularity.
    pub fn all_zero(&self) -> bool {
        self.metrics.iter().all(|m| m.delta() == 0 && m.contributions.is_empty())
    }

    /// The largest contributor to `metric`, if any changed.
    pub fn top_contributor(&self, metric: &str) -> Option<&Contribution> {
        self.metrics.iter().find(|m| m.metric == metric)?.contributions.first()
    }

    /// Human-readable table: one block per metric, top contributors
    /// indented beneath.
    pub fn render(&self) -> String {
        let mut out = String::from("attribution report (candidate vs baseline)\n");
        if self.all_zero() {
            out.push_str("  all metrics identical: no deltas to attribute\n");
            return out;
        }
        for m in &self.metrics {
            out.push_str(&format!(
                "  {}: {} -> {} ({:+})\n",
                m.metric,
                m.baseline,
                m.candidate,
                m.delta()
            ));
            for c in &m.contributions {
                out.push_str(&format!(
                    "    {:<5} {:<24} {:+}  ({} -> {})\n",
                    c.scope,
                    c.key,
                    c.delta(),
                    c.baseline,
                    c.candidate
                ));
            }
        }
        out
    }

    /// Deterministic JSON rendering (via [`crate::json`]).
    pub fn to_json(&self) -> String {
        let metrics = json::arr(self.metrics.iter().map(|m| {
            let contributions = json::arr(m.contributions.iter().map(|c| {
                Obj::new()
                    .str("scope", c.scope)
                    .str("key", &c.key)
                    .u64("baseline", c.baseline)
                    .u64("candidate", c.candidate)
                    .raw("delta", &c.delta().to_string())
                    .build()
            }));
            Obj::new()
                .str("metric", m.metric)
                .u64("baseline", m.baseline)
                .u64("candidate", m.candidate)
                .raw("delta", &m.delta().to_string())
                .raw("contributions", &contributions)
                .build()
        }));
        Obj::new().bool("all_zero", self.all_zero()).raw("metrics", &metrics).build()
    }
}

/// A counterfactual to evaluate against a critical path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Intervention {
    /// Scale a node's service time by `factor` (< 1 = faster CPU).
    NodeSpeed {
        /// Super-peer id.
        node: usize,
        /// Multiplier applied to each of the node's service segments.
        factor: f64,
    },
    /// Scale a directed link's in-flight and queueing time by `factor`
    /// (< 1 = lower latency / higher bandwidth).
    LinkSpeed {
        /// Sending super-peer.
        from: usize,
        /// Receiving super-peer.
        to: usize,
        /// Multiplier applied to each transfer/link-queue segment.
        factor: f64,
    },
}

impl Intervention {
    /// Stable key (`SPn` or `SPa->SPb`) for display and sorting.
    pub fn key(&self) -> String {
        match *self {
            Intervention::NodeSpeed { node, .. } => node_key(node),
            Intervention::LinkSpeed { from, to, .. } => link_key(from, to),
        }
    }

    fn factor(&self) -> f64 {
        match *self {
            Intervention::NodeSpeed { factor, .. } | Intervention::LinkSpeed { factor, .. } => {
                factor
            }
        }
    }

    /// Whether a path step is affected by this intervention.
    fn applies(&self, step_node: usize, kind: &StepKind) -> bool {
        match (*self, kind) {
            (Intervention::NodeSpeed { node, .. }, StepKind::Service { .. }) => step_node == node,
            (
                Intervention::LinkSpeed { from, to, .. },
                StepKind::Transfer { from_node, .. } | StepKind::LinkQueue { from_node, .. },
            ) => *from_node == from && step_node == to,
            _ => false,
        }
    }
}

/// The outcome of one what-if evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIf {
    /// The counterfactual evaluated.
    pub intervention: Intervention,
    /// Critical-path nanoseconds attributable to the intervention's
    /// target (the budget the scaling acts on).
    pub path_ns: u64,
    /// Recomputed critical-path length with affected segments scaled.
    pub predicted_total_ns: u64,
    /// Predicted critical-path nanoseconds saved (0 for factor ≥ 1 when
    /// nothing shrinks).
    pub predicted_saving_ns: u64,
}

/// Recomputes the critical path length with every segment affected by
/// `intervention` scaled by its factor (durations rounded to whole ns).
///
/// This is the causal-profiling estimate: the path's *shape* is held
/// fixed and only the targeted segments shrink (or grow), so a factor of
/// exactly `1.0` predicts exactly zero saving, and the prediction is a
/// best-case bound — in a re-run the true path may shift elsewhere.
pub fn what_if(path: &CriticalPath, intervention: Intervention) -> WhatIf {
    let factor = intervention.factor().max(0.0);
    let mut attributable = 0u64;
    let mut predicted_total = 0u64;
    for s in &path.steps {
        let dur = s.to - s.from;
        if intervention.applies(s.node, &s.kind) {
            attributable += dur;
            predicted_total += (dur as f64 * factor).round() as u64;
        } else {
            predicted_total += dur;
        }
    }
    WhatIf {
        intervention,
        path_ns: attributable,
        predicted_total_ns: predicted_total,
        predicted_saving_ns: path.total_ns.saturating_sub(predicted_total),
    }
}

/// Evaluates a `factor`-scaling what-if for every node and directed link
/// appearing on the critical path, ranked by predicted saving (ties
/// broken by node-before-link, then key — deterministic).
pub fn rank_interventions(path: &CriticalPath, factor: f64) -> Vec<WhatIf> {
    let mut nodes: Vec<usize> = Vec::new();
    let mut links: Vec<(usize, usize)> = Vec::new();
    for s in &path.steps {
        match s.kind {
            StepKind::Service { .. } if !nodes.contains(&s.node) => nodes.push(s.node),
            StepKind::Transfer { from_node, .. } | StepKind::LinkQueue { from_node, .. }
                if !links.contains(&(from_node, s.node)) =>
            {
                links.push((from_node, s.node))
            }
            _ => {}
        }
    }
    nodes.sort_unstable();
    links.sort_unstable();
    let mut out: Vec<WhatIf> = nodes
        .into_iter()
        .map(|node| what_if(path, Intervention::NodeSpeed { node, factor }))
        .chain(
            links
                .into_iter()
                .map(|(from, to)| what_if(path, Intervention::LinkSpeed { from, to, factor })),
        )
        .collect();
    out.sort_by(|a, b| {
        b.predicted_saving_ns.cmp(&a.predicted_saving_ns).then_with(|| {
            let kind = |w: &WhatIf| match w.intervention {
                Intervention::NodeSpeed { .. } => 0,
                Intervention::LinkSpeed { .. } => 1,
            };
            kind(a).cmp(&kind(b)).then_with(|| a.intervention.key().cmp(&b.intervention.key()))
        })
    });
    out
}

/// Human-readable what-if ranking table.
pub fn render_what_if(ranked: &[WhatIf]) -> String {
    let mut out = String::from("what-if ranking (predicted critical-path ns saved)\n");
    if ranked.is_empty() {
        out.push_str("  critical path has no scalable segments\n");
        return out;
    }
    for (i, w) in ranked.iter().enumerate() {
        let (kind, factor) = match w.intervention {
            Intervention::NodeSpeed { factor, .. } => ("node", factor),
            Intervention::LinkSpeed { factor, .. } => ("link", factor),
        };
        out.push_str(&format!(
            "  #{:<2} {:<5} {:<24} x{:<6} saves {:>12} ns (of {} ns on path)\n",
            i + 1,
            kind,
            w.intervention.key(),
            factor,
            w.predicted_saving_ns,
            w.path_ns
        ));
    }
    out
}

/// Deterministic JSON array for a what-if ranking (via [`crate::json`]).
pub fn what_if_json(ranked: &[WhatIf]) -> String {
    json::arr(ranked.iter().map(|w| {
        let (kind, factor) = match w.intervention {
            Intervention::NodeSpeed { factor, .. } => ("node", factor),
            Intervention::LinkSpeed { factor, .. } => ("link", factor),
        };
        let mut o = Obj::new().str("kind", kind).str("key", &w.intervention.key());
        o = match w.intervention {
            Intervention::NodeSpeed { node, .. } => o.u64("node", node as u64),
            Intervention::LinkSpeed { from, to, .. } => {
                o.u64("from", from as u64).u64("to", to as u64)
            }
        };
        o.raw("factor", &float(factor))
            .u64("path_ns", w.path_ns)
            .u64("predicted_total_ns", w.predicted_total_ns)
            .u64("predicted_saving_ns", w.predicted_saving_ns)
            .build()
    }))
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::critical::critical_path;
    use crate::event::SpanCause;

    fn svc(span: u64, node: usize, begin: u64, end: u64, cause: SpanCause) -> TraceEvent {
        TraceEvent::Service {
            span,
            node,
            begin,
            end,
            cause,
            dominance_tests: 3,
            points_scanned: 5,
            finished: false,
        }
    }

    fn send(
        msg_seq: u64,
        span: u64,
        from: usize,
        to: usize,
        bytes: u64,
        sent_at: u64,
        arrive_at: u64,
    ) -> TraceEvent {
        TraceEvent::Send { msg_seq, span, from, to, bytes, queued_at: sent_at, sent_at, arrive_at }
    }

    fn phase(span: u64, node: usize, at: u64, phase: QueryPhase) -> TraceEvent {
        TraceEvent::Proto { span, node, at, event: ProtoEvent::Phase { qid: 1, phase } }
    }

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            svc(0, 0, 0, 1000, SpanCause::Start),
            phase(0, 0, 0, QueryPhase::Started),
            send(10, 0, 0, 1, 64, 1000, 3000),
            TraceEvent::Deliver { msg_seq: 10, at: 3000, from: 0, to: 1 },
            svc(1, 1, 3000, 3500, SpanCause::Msg(10)),
            phase(1, 1, 3000, QueryPhase::LocalDone),
            send(11, 1, 1, 0, 32, 3500, 5000),
            TraceEvent::Deliver { msg_seq: 11, at: 5000, from: 1, to: 0 },
            svc(2, 0, 5000, 5800, SpanCause::Msg(11)),
            phase(2, 0, 5800, QueryPhase::Finalized),
            TraceEvent::Finish { span: 2, node: 0, at: 5800 },
        ]
    }

    #[test]
    fn digest_aggregates_by_phase_node_and_link() {
        let d = TraceDigest::from_events(&sample_trace());
        assert_eq!(d.sim_time_ns, 5800);
        assert_eq!(d.total_bytes, 96);
        assert_eq!(d.dominance_tests, 9);
        let labels: Vec<&str> = d.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(labels, ["started", "local-done", "finalized"]);
        assert_eq!(d.phases[0].service_ns, 1000);
        assert_eq!(d.phases[2].service_ns, 800, "finalizing span owns its own transition");
        assert_eq!(d.nodes.len(), 2);
        assert_eq!(d.nodes[0].service_ns, 1800);
        assert_eq!(d.nodes[0].bytes_out, 64);
        assert_eq!(d.links.len(), 2);
        assert_eq!(d.links[0].transfer_ns, 2000);
        assert_eq!(d.to_json(), TraceDigest::from_events(&sample_trace()).to_json());
    }

    #[test]
    fn identical_digests_attribute_to_all_zero() {
        let d = TraceDigest::from_events(&sample_trace());
        let rep = AttributionReport::attribute(&d, &d);
        assert!(rep.all_zero());
        assert!(rep.render().contains("no deltas to attribute"));
        assert!(rep.to_json().starts_with("{\"all_zero\":true,"));
        assert_eq!(rep.to_json(), AttributionReport::attribute(&d, &d).to_json());
    }

    #[test]
    fn perturbed_link_is_top_contributor() {
        let base = TraceDigest::from_events(&sample_trace());
        // Same trace, but link 0->1 takes 50µs longer in flight.
        let mut pert = sample_trace();
        for ev in &mut pert {
            match ev {
                TraceEvent::Send { from: 0, to: 1, arrive_at, .. } => *arrive_at += 50_000,
                TraceEvent::Deliver { from: 0, to: 1, at, .. } => *at += 50_000,
                TraceEvent::Service { span, begin, end, .. } if *span >= 1 => {
                    *begin += 50_000;
                    *end += 50_000;
                }
                TraceEvent::Send { from: 1, sent_at, arrive_at, queued_at, .. } => {
                    *sent_at += 50_000;
                    *arrive_at += 50_000;
                    *queued_at += 50_000;
                }
                TraceEvent::Finish { at, .. } => *at += 50_000,
                _ => {}
            }
        }
        let cand = TraceDigest::from_events(&pert);
        let rep = AttributionReport::attribute(&base, &cand);
        assert!(!rep.all_zero());
        let top = rep.top_contributor("sim_time_ns").expect("time moved");
        assert_eq!(top.scope, "link");
        assert_eq!(top.key, "SP0->SP1");
        assert_eq!(top.delta(), 50_000);
        // Bytes did not move at all.
        let bytes = rep.metrics.iter().find(|m| m.metric == "total_bytes").unwrap();
        assert_eq!(bytes.delta(), 0);
        assert!(bytes.contributions.is_empty());
    }

    #[test]
    fn what_if_factor_one_predicts_exactly_zero() {
        let p = critical_path(&sample_trace()).expect("finish");
        for w in rank_interventions(&p, 1.0) {
            assert_eq!(w.predicted_saving_ns, 0, "{:?}", w.intervention);
            assert_eq!(w.predicted_total_ns, p.total_ns);
        }
    }

    #[test]
    fn what_if_ranks_dominant_link_first() {
        // Transfers dominate the sample path (2000 + 1500 ns in flight vs
        // ≤1800 ns of service per node), so halving the slowest link must
        // outrank halving any node.
        let p = critical_path(&sample_trace()).expect("finish");
        let ranked = rank_interventions(&p, 0.5);
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].intervention, Intervention::LinkSpeed { from: 0, to: 1, factor: 0.5 });
        assert_eq!(ranked[0].path_ns, 2000);
        assert_eq!(ranked[0].predicted_saving_ns, 1000);
        // Deterministic rendering.
        assert_eq!(what_if_json(&ranked), what_if_json(&rank_interventions(&p, 0.5)));
        assert!(render_what_if(&ranked).contains("SP0->SP1"));
    }
}
