//! Tail-latency flight recorder: trace everything, keep the offenders.
//!
//! A soak run executes every query with a tracer installed, but holding
//! ten thousand full traces in memory defeats the point of a long run.
//! [`FlightRecorder`] accepts every `(label, latency, events)` observation
//! and retains the full event trace only for the current **top-K tail** —
//! the K slowest queries seen so far, ranked by simulated latency with
//! observation order breaking ties. Everything else is reduced to
//! counters and dropped, so memory stays `O(K · trace)` regardless of
//! workload length while every p99 offender remains fully explainable
//! (the retained events feed the existing `ExplainReport` / critical-path
//! machinery unchanged).
//!
//! Queries that exceeded their SLO are flagged on the retained record;
//! pick `K` at least as large as the tolerated violation count and every
//! violator that matters is guaranteed to still be resident (violations
//! are by construction the slowest queries when the SLO is a latency
//! budget).

use crate::event::{SimTime, TraceEvent};

/// A query whose full trace is currently retained by the recorder.
#[derive(Clone, Debug)]
pub struct RetainedQuery {
    /// Observation sequence number (0-based, in `observe` call order).
    pub seq: u64,
    /// Caller-chosen label, e.g. `"rtpm/q17"`.
    pub label: String,
    /// Simulated end-to-end latency of the query.
    pub latency_ns: SimTime,
    /// Whether the query violated its SLO at observation time.
    pub over_slo: bool,
    /// The full trace, exactly as the tracer recorded it.
    pub events: Vec<TraceEvent>,
}

/// Bounded-memory recorder retaining full traces for the top-K slowest
/// queries observed so far. See the module docs for the retention rule.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    /// Sorted worst-first: latency descending, then `seq` ascending.
    retained: Vec<RetainedQuery>,
    observed: u64,
    over_slo_seen: u64,
}

impl FlightRecorder {
    /// A recorder that retains at most `capacity` full traces.
    /// `capacity == 0` degenerates to pure counting (nothing retained).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            retained: Vec::with_capacity(capacity.min(1024)),
            observed: 0,
            over_slo_seen: 0,
        }
    }

    /// Offers one finished query to the recorder. Returns `true` if its
    /// trace was retained (it ranks in the current top-K), `false` if the
    /// events were dropped on the spot.
    pub fn observe(
        &mut self,
        label: impl Into<String>,
        latency_ns: SimTime,
        over_slo: bool,
        events: Vec<TraceEvent>,
    ) -> bool {
        let seq = self.observed;
        self.observed += 1;
        if over_slo {
            self.over_slo_seen += 1;
        }
        if self.capacity == 0 {
            return false;
        }
        // Worst-first order: earlier entry ⇔ (higher latency, then lower seq).
        // All resident entries have lower seq, so ties sort before the newcomer.
        let pos = self.retained.partition_point(|r| r.latency_ns >= latency_ns);
        if pos >= self.capacity {
            return false; // slower-or-equal queries already fill the budget
        }
        self.retained
            .insert(pos, RetainedQuery { seq, label: label.into(), latency_ns, over_slo, events });
        self.retained.truncate(self.capacity);
        true
    }

    /// The currently retained tail, worst (slowest) first.
    pub fn retained(&self) -> &[RetainedQuery] {
        &self.retained
    }

    /// The slowest query seen so far, if any was retained.
    pub fn worst(&self) -> Option<&RetainedQuery> {
        self.retained.first()
    }

    /// Total queries offered via [`FlightRecorder::observe`].
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Queries whose traces are *not* resident (observed − retained).
    pub fn evicted(&self) -> u64 {
        self.observed - self.retained.len() as u64
    }

    /// Queries flagged over-SLO at observation time (retained or not).
    pub fn over_slo_seen(&self) -> u64 {
        self.over_slo_seen
    }

    /// The retention capacity `K` this recorder was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn ev() -> Vec<TraceEvent> {
        // A minimal stand-in trace; content is irrelevant to retention.
        vec![TraceEvent::Finish { span: 0, node: 0, at: 1 }]
    }

    #[test]
    fn retains_exactly_top_k_by_latency() {
        let mut rec = FlightRecorder::new(3);
        let latencies = [50u64, 10, 99, 40, 70, 5, 99];
        for (i, &l) in latencies.iter().enumerate() {
            rec.observe(format!("q{i}"), l, false, ev());
        }
        let kept: Vec<(u64, u64)> = rec.retained().iter().map(|r| (r.latency_ns, r.seq)).collect();
        // Two 99s tie; the earlier observation wins the earlier slot.
        assert_eq!(kept, vec![(99, 2), (99, 6), (70, 4)]);
        assert_eq!(rec.observed(), 7);
        assert_eq!(rec.evicted(), 4);
        assert_eq!(rec.worst().unwrap().label, "q2");
    }

    #[test]
    fn eviction_frees_the_trace_not_the_counters() {
        let mut rec = FlightRecorder::new(1);
        assert!(rec.observe("slow", 100, true, ev()));
        assert!(!rec.observe("fast", 1, false, ev()));
        assert_eq!(rec.retained().len(), 1);
        assert_eq!(rec.over_slo_seen(), 1);
        assert!(rec.retained()[0].over_slo);
        // A new slowest query displaces the resident one.
        assert!(rec.observe("slower", 200, false, ev()));
        assert_eq!(rec.worst().unwrap().label, "slower");
        assert_eq!(rec.retained().len(), 1);
        assert_eq!(rec.evicted(), 2);
    }

    #[test]
    fn zero_capacity_counts_but_never_retains() {
        let mut rec = FlightRecorder::new(0);
        assert!(!rec.observe("q", 10, true, ev()));
        assert_eq!(rec.observed(), 1);
        assert_eq!(rec.over_slo_seen(), 1);
        assert!(rec.retained().is_empty());
        assert!(rec.worst().is_none());
    }

    #[test]
    fn memory_stays_bounded_over_long_runs() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10_000u64 {
            rec.observe(format!("q{i}"), i % 977, false, ev());
        }
        assert_eq!(rec.retained().len(), 4);
        assert_eq!(rec.observed(), 10_000);
        // All four retained latencies are the maximal residue.
        assert!(rec.retained().iter().all(|r| r.latency_ns == 976));
    }
}
