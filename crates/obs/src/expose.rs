//! Metrics exposition for long-running processes.
//!
//! A [`MetricsSnapshot`] is a point-in-time copy of the
//! [`MetricsRegistry`] distilled from a tracer's buffer, with a
//! Prometheus-text-format serializer. A [`Sampler`] captures snapshots
//! on an interval and flushes them **atomically** (write temp file, then
//! rename) to a metrics file, so `tail`/scrape-style consumers never see
//! a half-written exposition. No HTTP server is involved: a file is
//! enough for the live runtime's lifetime, and node exporters can pick
//! it up from disk.
//!
//! Exposition rules:
//!
//! * counters become `skypeer_<name>_total`;
//! * histograms use cumulative `_bucket{le="…"}` series over the
//!   registry's power-of-two buckets, plus `_sum`/`_count`;
//! * per-link and per-node aggregates become labelled series
//!   (`skypeer_link_bytes_total{src="0",dst="3"}`);
//! * output order is deterministic (sorted maps, node index order), so
//!   two snapshots of the same trace are byte-identical.

use crate::metrics::MetricsRegistry;
use crate::tracer::MemTracer;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Resource usage of the exposing process itself, read from `/proc`.
///
/// Only available on Linux; [`ProcessStats::read`] returns `None`
/// elsewhere (or when `/proc` is unreadable) and the exposition simply
/// omits the `process_*` families.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessStats {
    /// Total user + system CPU time consumed, in seconds.
    pub cpu_seconds: f64,
    /// Resident set size, in bytes.
    pub resident_bytes: u64,
}

impl ProcessStats {
    /// Reads the calling process's CPU time (`/proc/self/stat`) and
    /// resident set (`/proc/self/status` `VmRSS`).
    pub fn read() -> Option<Self> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // utime/stime are stat fields 14/15; everything before the
        // closing paren is pid + comm (comm may contain spaces), so
        // count from there: the remainder starts at field 3.
        let rest = stat.rsplit_once(')')?.1;
        let mut fields = rest.split_whitespace();
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        // USER_HZ: fixed at 100 on Linux (sysconf(_SC_CLK_TCK); we avoid
        // the libc call — the kernel ABI has used 100 since 2.6).
        let cpu_seconds = (utime + stime) as f64 / 100.0;
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let rss_kb: u64 = status
            .lines()
            .find(|l| l.starts_with("VmRSS:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())?;
        Some(ProcessStats { cpu_seconds, resident_bytes: rss_kb * 1024 })
    }
}

/// A point-in-time copy of a run's metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Number of trace events the snapshot was distilled from.
    pub events: usize,
    /// The distilled registry.
    pub registry: MetricsRegistry,
    /// Process resource usage — populated only by [`MetricsSnapshot::capture`]
    /// (live sampling), never by [`MetricsSnapshot::from_events`], whose
    /// output must stay byte-deterministic for goldens.
    pub process: Option<ProcessStats>,
}

impl MetricsSnapshot {
    /// Snapshot the tracer's current buffer (does not drain it).
    pub fn capture(tracer: &MemTracer) -> Self {
        let events = tracer.snapshot();
        MetricsSnapshot {
            events: events.len(),
            registry: MetricsRegistry::from_events(&events),
            process: ProcessStats::read(),
        }
    }

    /// Build a snapshot from an explicit event slice.
    pub fn from_events(events: &[crate::event::TraceEvent]) -> Self {
        MetricsSnapshot {
            events: events.len(),
            registry: MetricsRegistry::from_events(events),
            process: None,
        }
    }

    /// Render in the Prometheus text exposition format (version 0.0.4).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let r = &self.registry;

        let _ = writeln!(out, "# HELP skypeer_trace_events Trace events in the buffer.");
        let _ = writeln!(out, "# TYPE skypeer_trace_events gauge");
        let _ = writeln!(out, "skypeer_trace_events {}", self.events);

        for (name, value) in &r.counters {
            let _ = writeln!(out, "# HELP skypeer_{name}_total Run total of '{name}' events.");
            let _ = writeln!(out, "# TYPE skypeer_{name}_total counter");
            let _ = writeln!(out, "skypeer_{name}_total {value}");
        }

        for (name, help, hist) in [
            ("service_ns", "Service time per handler invocation, ns.", &r.service_ns),
            (
                "dominance_tests_per_span",
                "Dominance tests per handler invocation.",
                &r.dominance_tests,
            ),
            (
                "points_scanned_per_span",
                "Points scanned per handler invocation.",
                &r.points_scanned,
            ),
            ("msg_bytes", "Wire size per message, bytes.", &r.msg_bytes),
            ("hop_latency_ns", "Per-hop latency (link queue + transfer), ns.", &r.hop_latency_ns),
        ] {
            let _ = writeln!(out, "# HELP skypeer_{name} {help}");
            let _ = writeln!(out, "# TYPE skypeer_{name} histogram");
            let mut cumulative = 0u64;
            for (_lo, hi, count) in hist.buckets() {
                cumulative += count;
                let _ = writeln!(out, "skypeer_{name}_bucket{{le=\"{hi}\"}} {cumulative}");
            }
            let _ = writeln!(out, "skypeer_{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "skypeer_{name}_sum {}", hist.sum());
            let _ = writeln!(out, "skypeer_{name}_count {}", hist.count());
        }

        if !r.link_bytes.is_empty() {
            let _ = writeln!(out, "# HELP skypeer_link_bytes_total Bytes sent per directed link.");
            let _ = writeln!(out, "# TYPE skypeer_link_bytes_total counter");
            for (&(from, to), &bytes) in &r.link_bytes {
                let _ = writeln!(
                    out,
                    "skypeer_link_bytes_total{{src=\"{from}\",dst=\"{to}\"}} {bytes}"
                );
            }
        }

        if !r.per_node.is_empty() {
            type Get = fn(&crate::metrics::NodeMetrics) -> u64;
            for (name, help, get) in [
                ("node_spans_total", "Handler spans per node.", (|n| n.spans) as Get),
                ("node_service_ns_total", "Service time per node, ns.", |n| n.service_ns),
                ("node_msgs_out_total", "Messages sent per node.", |n| n.msgs_out),
                ("node_msgs_in_total", "Messages received per node.", |n| n.msgs_in),
                ("node_bytes_out_total", "Bytes sent per node.", |n| n.bytes_out),
                ("node_bytes_in_total", "Bytes received per node.", |n| n.bytes_in),
                ("node_dominance_tests_total", "Dominance tests per node.", |n| n.dominance_tests),
            ] {
                let _ = writeln!(out, "# HELP skypeer_{name} {help}");
                let _ = writeln!(out, "# TYPE skypeer_{name} counter");
                for (i, n) in r.per_node.iter().enumerate() {
                    let _ = writeln!(out, "skypeer_{name}{{node=\"{i}\"}} {}", get(n));
                }
            }
            let _ =
                writeln!(out, "# HELP skypeer_node_peak_queue_depth Peak inbox depth per node.");
            let _ = writeln!(out, "# TYPE skypeer_node_peak_queue_depth gauge");
            for (i, d) in r.peak_queue_depth.iter().enumerate() {
                let _ = writeln!(out, "skypeer_node_peak_queue_depth{{node=\"{i}\"}} {d}");
            }
        }

        if let Some(last) = r.thresholds.last() {
            let _ = writeln!(out, "# HELP skypeer_threshold Most recent threshold value.");
            let _ = writeln!(out, "# TYPE skypeer_threshold gauge");
            let value = if last.value.is_finite() {
                format!("{:?}", last.value)
            } else if last.value > 0.0 {
                "+Inf".to_string()
            } else {
                "-Inf".to_string()
            };
            let _ = writeln!(out, "skypeer_threshold{{qid=\"{}\"}} {value}", last.qid);
        }

        if let Some(p) = &self.process {
            let _ = writeln!(
                out,
                "# HELP process_cpu_seconds_total Total user and system CPU time, seconds."
            );
            let _ = writeln!(out, "# TYPE process_cpu_seconds_total counter");
            let _ = writeln!(out, "process_cpu_seconds_total {:?}", p.cpu_seconds);
            let _ = writeln!(out, "# HELP process_resident_bytes Resident set size, bytes.");
            let _ = writeln!(out, "# TYPE process_resident_bytes gauge");
            let _ = writeln!(out, "process_resident_bytes {}", p.resident_bytes);
        }

        out
    }

    /// Distill the snapshot into telemetry history samples (one
    /// [`history_line`](crate::tsdb::history_line) per series) at the
    /// given logical tick: every counter, the max per-node peak queue
    /// depth as `queue_depth`, and per-node `SP<i>/<metric>` series the
    /// dashboard's node table is built from. Counters are cumulative
    /// run totals, so trends show as slope changes.
    pub fn history_lines(&self, tick: u64) -> Vec<String> {
        use crate::tsdb::history_line;
        let r = &self.registry;
        let mut out = Vec::new();
        for (name, value) in &r.counters {
            out.push(history_line(tick, name, *value as f64));
        }
        out.push(history_line(tick, "queue_depth", r.max_queue_depth() as f64));
        for (i, n) in r.per_node.iter().enumerate() {
            out.push(history_line(tick, &format!("SP{i}/bytes_out"), n.bytes_out as f64));
            out.push(history_line(tick, &format!("SP{i}/msgs_out"), n.msgs_out as f64));
            out.push(history_line(tick, &format!("SP{i}/service_ns"), n.service_ns as f64));
        }
        out
    }
}

/// Escapes a label *value* for the Prometheus exposition format:
/// backslash, double quote, and newline must be escaped inside the
/// `label="value"` quoting (exposition format 0.0.4).
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an [`HdrHistogram`](crate::hdr::HdrHistogram) as one
/// Prometheus histogram family: cumulative `_bucket{le="…"}` series over
/// the occupied HDR buckets (upper bounds), a `+Inf` bucket, and
/// `_sum`/`_count`. `labels` are attached to every series (values escaped
/// via [`escape_label`]); `le` is appended after them on bucket lines.
pub fn hdr_prometheus(
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    hist: &crate::hdr::HdrHistogram,
) -> String {
    let base = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    let bucket_labels = |le: &str| {
        if base.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{{{base},le=\"{le}\"}}")
        }
    };
    let plain = if base.is_empty() { String::new() } else { format!("{{{base}}}") };

    let mut out = String::new();
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (_lo, hi, count) in hist.buckets() {
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", bucket_labels(&hi.to_string()));
    }
    let _ = writeln!(out, "{name}_bucket{} {}", bucket_labels("+Inf"), hist.count());
    let _ = writeln!(out, "{name}_sum{plain} {}", hist.sum());
    let _ = writeln!(out, "{name}_count{plain} {}", hist.count());
    out
}

/// Atomically replace `path` with `contents` (temp file + rename, same
/// directory so the rename cannot cross filesystems).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = match (path.parent(), path.file_name()) {
        (Some(dir), Some(name)) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            dir.join(n)
        }
        _ => return Err(io::Error::new(io::ErrorKind::InvalidInput, "bad metrics path")),
    };
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

struct SamplerShared {
    tracer: Arc<MemTracer>,
    path: PathBuf,
    stop: AtomicBool,
    flushes: AtomicU64,
    /// When present, every flush also appends
    /// [`MetricsSnapshot::history_lines`] at the next tick.
    history: Option<std::sync::Mutex<Vec<String>>>,
    ticks: AtomicU64,
}

impl SamplerShared {
    fn flush(&self) -> io::Result<()> {
        let snap = MetricsSnapshot::capture(&self.tracer);
        write_atomic(&self.path, &snap.prometheus())?;
        if let Some(h) = &self.history {
            let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
            let lines = snap.history_lines(tick);
            h.lock().expect("history lock").extend(lines);
        }
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Periodic exposition sampler. [`Sampler::start`] spawns a thread that
/// flushes a [`MetricsSnapshot`] of the tracer to a file on an interval;
/// the returned [`SamplerHandle`] flushes on demand and stops the thread
/// when finished (or dropped).
pub struct Sampler;

impl Sampler {
    /// Start sampling `tracer` into `path` every `interval`.
    ///
    /// An initial flush happens immediately, so the file exists as soon
    /// as this returns.
    pub fn start(
        tracer: Arc<MemTracer>,
        path: impl Into<PathBuf>,
        interval: Duration,
    ) -> io::Result<SamplerHandle> {
        Self::spawn(tracer, path.into(), interval, false)
    }

    /// Like [`Sampler::start`], but every flush also records telemetry
    /// history (one [`MetricsSnapshot::history_lines`] batch per flush,
    /// ticked by flush index). Read it back with
    /// [`SamplerHandle::history_text`].
    pub fn start_with_history(
        tracer: Arc<MemTracer>,
        path: impl Into<PathBuf>,
        interval: Duration,
    ) -> io::Result<SamplerHandle> {
        Self::spawn(tracer, path.into(), interval, true)
    }

    fn spawn(
        tracer: Arc<MemTracer>,
        path: PathBuf,
        interval: Duration,
        with_history: bool,
    ) -> io::Result<SamplerHandle> {
        let shared = Arc::new(SamplerShared {
            tracer,
            path,
            stop: AtomicBool::new(false),
            flushes: AtomicU64::new(0),
            history: with_history.then(|| std::sync::Mutex::new(Vec::new())),
            ticks: AtomicU64::new(0),
        });
        shared.flush()?;
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("skypeer-metrics-sampler".to_string())
            .spawn(move || {
                // Sleep in small slices so stop requests are honored
                // promptly even with long intervals.
                let slice = interval.min(Duration::from_millis(25));
                let mut elapsed = Duration::ZERO;
                loop {
                    if worker.stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let _ = worker.flush();
                    }
                }
            })?;
        Ok(SamplerHandle { shared, thread: Some(thread) })
    }
}

/// Handle to a running [`Sampler`]. Stops the worker thread on
/// [`SamplerHandle::finish`] or drop.
pub struct SamplerHandle {
    shared: Arc<SamplerShared>,
    thread: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Write a snapshot now, regardless of the interval.
    pub fn flush(&self) -> io::Result<()> {
        self.shared.flush()
    }

    /// Number of successful flushes so far (including the initial one).
    pub fn flushes(&self) -> u64 {
        self.shared.flushes.load(Ordering::Relaxed)
    }

    /// The metrics file being written.
    pub fn path(&self) -> &Path {
        &self.shared.path
    }

    /// The recorded telemetry history as JSONL text (one sample per
    /// line, trailing newline), or `None` when the sampler was started
    /// without history recording.
    pub fn history_text(&self) -> Option<String> {
        let h = self.shared.history.as_ref()?;
        let lines = h.lock().expect("history lock");
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        Some(out)
    }

    /// Stop the worker, join it, and write one final snapshot.
    pub fn finish(mut self) -> io::Result<()> {
        self.stop_and_join();
        self.shared.flush()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::event::{SpanCause, TraceEvent};
    use crate::tracer::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Service {
                span: 0,
                node: 0,
                begin: 0,
                end: 120,
                cause: SpanCause::Start,
                dominance_tests: 4,
                points_scanned: 9,
                finished: false,
            },
            TraceEvent::Send {
                msg_seq: 0,
                span: 0,
                from: 0,
                to: 1,
                bytes: 256,
                queued_at: 120,
                sent_at: 120,
                arrive_at: 500,
            },
            TraceEvent::Deliver { msg_seq: 0, at: 500, from: 0, to: 1 },
            TraceEvent::Finish { span: 1, node: 1, at: 700 },
        ]
    }

    #[test]
    fn prometheus_format_is_well_formed_and_deterministic() {
        let snap = MetricsSnapshot::from_events(&sample_events());
        let text = snap.prometheus();
        assert!(text.contains("skypeer_messages_sent_total 1"));
        assert!(text.contains("skypeer_bytes_sent_total 256"));
        assert!(text.contains("skypeer_link_bytes_total{src=\"0\",dst=\"1\"} 256"));
        assert!(text.contains("skypeer_service_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("skypeer_service_ns_sum 120"));
        assert!(text.contains("skypeer_node_msgs_in_total{node=\"1\"} 1"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().expect("value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf",
                "bad value in line: {line}"
            );
            assert!(parts.next().expect("name").starts_with("skypeer_"), "{line}");
        }
        assert_eq!(text, MetricsSnapshot::from_events(&sample_events()).prometheus());
    }

    #[test]
    fn histogram_series_are_cumulative() {
        // Registry histograms: every `_bucket` series must be
        // non-decreasing in `le`, and `+Inf` must equal `_count`.
        let text = MetricsSnapshot::from_events(&sample_events()).prometheus();
        check_cumulative(&text, "skypeer_service_ns");
        check_cumulative(&text, "skypeer_msg_bytes");

        // HDR exposition obeys the same contract.
        let mut h = crate::hdr::HdrHistogram::new(3);
        for v in [1u64, 1, 9, 130, 130, 131, 70_000] {
            h.record(v);
        }
        let hdr = hdr_prometheus("skypeer_soak_latency_ns", "Latency.", &[], &h);
        check_cumulative(&hdr, "skypeer_soak_latency_ns");
        assert!(hdr.contains("skypeer_soak_latency_ns_sum 70402"));
        assert!(hdr.contains("skypeer_soak_latency_ns_count 7"));
    }

    fn check_cumulative(text: &str, family: &str) {
        let prefix = format!("{family}_bucket");
        let mut last = 0u64;
        let mut saw_inf = false;
        let mut buckets = 0;
        for line in text.lines().filter(|l| l.starts_with(&prefix)) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().expect("count");
            assert!(value >= last, "bucket counts must be cumulative: {line}");
            last = value;
            buckets += 1;
            if line.contains("le=\"+Inf\"") {
                saw_inf = true;
            }
        }
        assert!(buckets > 0, "no bucket series for {family}");
        assert!(saw_inf, "missing +Inf bucket for {family}");
        let count_line = text
            .lines()
            .find(|l| l.starts_with(&format!("{family}_count")))
            .expect("_count series");
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(last, count, "+Inf bucket must equal _count for {family}");
    }

    #[test]
    fn every_type_is_preceded_by_help_for_the_same_family() {
        // Exposition hygiene: scrapers and promtool treat a `# TYPE`
        // without its family's `# HELP` as malformed metadata. Every
        // family we emit must carry both, HELP first.
        let text = MetricsSnapshot::capture(&{
            let t = MemTracer::new();
            for ev in sample_events() {
                t.record(ev);
            }
            t
        })
        .prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let mut checked = 0;
        for (i, line) in lines.iter().enumerate() {
            let Some(rest) = line.strip_prefix("# TYPE ") else { continue };
            let family = rest.split_whitespace().next().expect("family name");
            let prev = i.checked_sub(1).map(|j| lines[j]).unwrap_or("");
            assert!(
                prev.starts_with(&format!("# HELP {family} ")),
                "`{line}` not preceded by a HELP for {family}; got `{prev}`"
            );
            checked += 1;
        }
        // The trace covers counters, histograms, link/per-node families,
        // queue depth, and (on Linux) process stats.
        assert!(checked >= 15, "expected many families, checked {checked}");
    }

    #[test]
    fn sampler_history_records_ticked_series() {
        let dir = std::env::temp_dir().join(format!("skypeer-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.prom");
        let tracer = Arc::new(MemTracer::new());
        let handle =
            Sampler::start_with_history(Arc::clone(&tracer), &path, Duration::from_secs(3600))
                .expect("sampler starts");
        for ev in sample_events() {
            tracer.record(ev);
        }
        handle.flush().expect("manual flush");
        let text = handle.history_text().expect("history enabled");
        let samples = crate::tsdb::parse_history(&text).expect("history parses");
        assert!(samples.iter().any(|s| s.tick == 0), "initial flush ticked 0");
        assert!(
            samples.iter().any(|s| s.tick >= 1 && s.series == "bytes_sent" && s.value == 256.0),
            "second flush sees the counter: {samples:?}"
        );
        assert!(samples.iter().any(|s| s.series == "queue_depth"));
        assert!(samples.iter().any(|s| s.series.starts_with("SP1/")));
        handle.finish().expect("final flush");
        // Plain start() records nothing.
        let plain = Sampler::start(Arc::new(MemTracer::new()), &path, Duration::from_secs(3600))
            .expect("sampler starts");
        assert!(plain.history_text().is_none());
        plain.finish().expect("final flush");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");

        let mut h = crate::hdr::HdrHistogram::new(2);
        h.record(5);
        let text = hdr_prometheus(
            "skypeer_soak_latency_ns",
            "Latency.",
            &[("variant", "we\"ird\\na\nme"), ("mix", "uniform")],
            &h,
        );
        assert!(text.contains(
            "skypeer_soak_latency_ns_bucket{variant=\"we\\\"ird\\\\na\\nme\",mix=\"uniform\",le=\"5\"} 1"
        ));
        assert!(text.contains(
            "skypeer_soak_latency_ns_sum{variant=\"we\\\"ird\\\\na\\nme\",mix=\"uniform\"} 5"
        ));
    }

    #[test]
    fn process_stats_appear_only_on_live_capture() {
        // Event-derived snapshots (the golden path) must not carry
        // host-dependent process lines.
        let golden = MetricsSnapshot::from_events(&sample_events());
        assert!(golden.process.is_none());
        assert!(!golden.prometheus().contains("process_"));

        // Live capture picks them up on Linux; elsewhere they are
        // omitted rather than faked.
        let tracer = MemTracer::new();
        let live = MetricsSnapshot::capture(&tracer);
        if let Some(p) = live.process {
            assert!(p.resident_bytes > 0, "a running process has a resident set");
            assert!(p.cpu_seconds >= 0.0);
            let text = live.prometheus();
            assert!(text.contains("process_cpu_seconds_total "));
            assert!(text.contains(&format!("process_resident_bytes {}", p.resident_bytes)));
        } else if cfg!(target_os = "linux") {
            panic!("Linux must expose /proc stats");
        }
    }

    #[test]
    fn sampler_flushes_atomically_and_on_finish() {
        let dir = std::env::temp_dir().join(format!("skypeer-expose-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.prom");
        let tracer = Arc::new(MemTracer::new());
        let handle = Sampler::start(Arc::clone(&tracer), &path, Duration::from_secs(3600))
            .expect("sampler starts");
        // Initial flush happened; file exists and parses as an exposition
        // of an empty trace.
        let first = std::fs::read_to_string(&path).expect("file written");
        assert!(first.contains("skypeer_trace_events 0"));
        for ev in sample_events() {
            tracer.record(ev);
        }
        handle.flush().expect("manual flush");
        let second = std::fs::read_to_string(&path).expect("file re-written");
        assert!(second.contains("skypeer_trace_events 4"));
        assert!(handle.flushes() >= 2);
        handle.finish().expect("final flush");
        // No temp file left behind.
        assert!(!dir.join("metrics.prom.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
