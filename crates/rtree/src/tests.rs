//! Unit and property tests for the R-tree, validated against a linear-scan
//! oracle.

use crate::{RTree, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force oracle mirroring the tree contents.
#[derive(Default)]
struct Oracle {
    points: Vec<(Vec<f64>, u64)>,
}

impl Oracle {
    fn insert(&mut self, coords: &[f64], id: u64) {
        self.points.push((coords.to_vec(), id));
    }

    fn remove(&mut self, coords: &[f64], id: u64) -> bool {
        if let Some(pos) = self.points.iter().position(|(c, i)| *i == id && c == coords) {
            self.points.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn window(&self, w: &Rect) -> Vec<(Vec<f64>, u64)> {
        self.points.iter().filter(|(c, _)| w.contains_point(c)).cloned().collect()
    }

    fn is_dominated(&self, q: &[f64]) -> bool {
        self.points.iter().any(|(c, _)| {
            c.iter().zip(q).all(|(a, b)| a <= b) && c.iter().zip(q).any(|(a, b)| a < b)
        })
    }

    fn is_ext_dominated(&self, q: &[f64]) -> bool {
        self.points.iter().any(|(c, _)| c.iter().zip(q).all(|(a, b)| a < b))
    }
}

fn sorted(mut v: Vec<(Vec<f64>, u64)>) -> Vec<(Vec<f64>, u64)> {
    v.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.partial_cmp(&b.0).unwrap()));
    v
}

#[test]
fn empty_tree_behaves() {
    let tree = RTree::new(3);
    assert!(tree.is_empty());
    assert_eq!(tree.len(), 0);
    assert!(!tree.is_dominated(&[1.0, 1.0, 1.0]));
    assert!(tree.window_collect(&Rect::from_origin(&[1.0, 1.0, 1.0])).is_empty());
    tree.check_invariants(true);
}

#[test]
fn single_point_roundtrip() {
    let mut tree = RTree::new(2);
    tree.insert(&[0.5, 0.5], 7);
    assert_eq!(tree.len(), 1);
    assert!(tree.is_dominated(&[0.6, 0.6]));
    assert!(!tree.is_dominated(&[0.5, 0.5]), "equal point must not dominate");
    assert!(!tree.is_dominated(&[0.4, 0.9]));
    assert!(tree.remove(&[0.5, 0.5], 7));
    assert!(!tree.remove(&[0.5, 0.5], 7), "double remove must fail");
    assert!(tree.is_empty());
    tree.check_invariants(true);
}

#[test]
fn dominance_vs_ext_dominance_on_ties() {
    let mut tree = RTree::new(2);
    tree.insert(&[1.0, 2.0], 1);
    // q shares the first coordinate: dominated, but not ext-dominated.
    assert!(tree.is_dominated(&[1.0, 3.0]));
    assert!(!tree.is_ext_dominated(&[1.0, 3.0]));
    assert!(tree.is_ext_dominated(&[1.5, 3.0]));
}

#[test]
fn duplicate_coordinates_coexist() {
    let mut tree = RTree::new(2);
    tree.insert(&[1.0, 1.0], 1);
    tree.insert(&[1.0, 1.0], 2);
    assert_eq!(tree.len(), 2);
    assert!(!tree.is_dominated(&[1.0, 1.0]));
    assert!(tree.remove(&[1.0, 1.0], 1));
    assert_eq!(tree.len(), 1);
    assert_eq!(tree.iter_all()[0].1, 2);
}

#[test]
fn splits_preserve_contents() {
    let mut tree = RTree::with_capacity_per_node(2, 4);
    let mut oracle = Oracle::default();
    let mut rng = StdRng::seed_from_u64(42);
    for id in 0..200u64 {
        let p = [rng.gen::<f64>(), rng.gen::<f64>()];
        tree.insert(&p, id);
        oracle.insert(&p, id);
    }
    tree.check_invariants(true);
    assert_eq!(tree.len(), 200);
    let all = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
    assert_eq!(sorted(tree.window_collect(&all)), sorted(oracle.window(&all)));
    assert!(tree.stats().height > 1, "200 points with fanout 4 must split");
}

#[test]
fn deletion_condenses_tree() {
    let mut tree = RTree::with_capacity_per_node(2, 4);
    let mut rng = StdRng::seed_from_u64(7);
    let mut pts = Vec::new();
    for id in 0..150u64 {
        let p = [rng.gen::<f64>(), rng.gen::<f64>()];
        tree.insert(&p, id);
        pts.push((p, id));
    }
    for (p, id) in &pts[..140] {
        assert!(tree.remove(p, *id));
        tree.check_invariants(true);
    }
    assert_eq!(tree.len(), 10);
    let remaining = sorted(tree.iter_all());
    let expected = sorted(pts[140..].iter().map(|(p, id)| (p.to_vec(), *id)).collect());
    assert_eq!(remaining, expected);
}

#[test]
fn remove_dominated_by_prunes_exactly() {
    let mut tree = RTree::new(2);
    tree.insert(&[2.0, 2.0], 1); // dominated by p
    tree.insert(&[1.0, 1.0], 2); // equal to p: kept
    tree.insert(&[1.0, 3.0], 3); // dominated (tied on x)
    tree.insert(&[0.5, 5.0], 4); // incomparable: kept
    let removed = tree.remove_dominated_by(&[1.0, 1.0]);
    let mut ids: Vec<u64> = removed.iter().map(|(_, id)| *id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 3]);
    assert_eq!(tree.len(), 2);
}

#[test]
fn remove_ext_dominated_keeps_ties() {
    let mut tree = RTree::new(2);
    tree.insert(&[2.0, 2.0], 1); // strictly greater everywhere: removed
    tree.insert(&[1.0, 3.0], 2); // tied on x: kept under ext-dominance
    let removed = tree.remove_ext_dominated_by(&[1.0, 1.0]);
    assert_eq!(removed.len(), 1);
    assert_eq!(removed[0].1, 1);
    assert_eq!(tree.len(), 1);
}

#[test]
fn bulk_load_matches_inserts() {
    let mut rng = StdRng::seed_from_u64(99);
    for &n in &[0usize, 1, 5, 16, 17, 100, 1000] {
        for &dim in &[1usize, 2, 3, 5] {
            let pts: Vec<(Vec<f64>, u64)> =
                (0..n).map(|i| ((0..dim).map(|_| rng.gen::<f64>()).collect(), i as u64)).collect();
            let refs: Vec<(&[f64], u64)> = pts.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
            let tree = RTree::bulk_load(dim, &refs);
            assert_eq!(tree.len(), n, "bulk load n={n} dim={dim}");
            tree.check_invariants(false);
            assert_eq!(sorted(tree.iter_all()), sorted(pts.clone()));
        }
    }
}

#[test]
fn bulk_loaded_tree_supports_dynamic_ops() {
    let mut rng = StdRng::seed_from_u64(5);
    let pts: Vec<(Vec<f64>, u64)> = (0..300)
        .map(|i| (vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()], i as u64))
        .collect();
    let refs: Vec<(&[f64], u64)> = pts.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
    let mut tree = RTree::bulk_load(3, &refs);
    tree.insert(&[0.5, 0.5, 0.5], 1000);
    assert!(tree.remove(&pts[0].0, 0));
    assert_eq!(tree.len(), 300);
    tree.check_invariants(false);
}

#[test]
fn stats_reflect_structure() {
    let mut tree = RTree::with_capacity_per_node(2, 8);
    for i in 0..100u64 {
        tree.insert(&[i as f64, (100 - i) as f64], i);
    }
    let s = tree.stats();
    assert_eq!(s.len, 100);
    assert!(s.height >= 2);
    assert!(s.nodes >= 100 / 8);
}

#[test]
#[should_panic(expected = "dimensionality mismatch")]
fn wrong_dim_insert_panics() {
    let mut tree = RTree::new(3);
    tree.insert(&[1.0, 2.0], 1);
}

#[test]
fn early_stop_window_visit() {
    let mut tree = RTree::new(1);
    for i in 0..50u64 {
        tree.insert(&[i as f64], i);
    }
    let mut seen = 0;
    let complete = tree.window(&Rect::new(&[0.0], &[100.0]), |_, _| {
        seen += 1;
        seen < 5
    });
    assert!(!complete);
    assert_eq!(seen, 5);
}

#[test]
fn nearest_neighbors_in_distance_order() {
    let mut tree = RTree::new(2);
    tree.insert(&[0.0, 0.0], 0);
    tree.insert(&[1.0, 0.0], 1);
    tree.insert(&[3.0, 0.0], 2);
    tree.insert(&[10.0, 10.0], 3);
    let got = tree.nearest(&[0.2, 0.0], 3);
    let ids: Vec<u64> = got.iter().map(|(_, id)| *id).collect();
    assert_eq!(ids, vec![0, 1, 2]);
    assert_eq!(tree.nearest(&[0.0, 0.0], 10).len(), 4, "k beyond size returns all");
    assert!(tree.nearest(&[0.0, 0.0], 0).is_empty());
}

#[test]
fn nearest_on_empty_tree() {
    let tree = RTree::new(3);
    assert!(tree.nearest(&[1.0, 1.0, 1.0], 5).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// kNN agrees with a sort-by-distance linear scan.
    #[test]
    fn prop_knn_matches_linear_scan(
        pts in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..200),
        query in prop::collection::vec(0.0f64..1.0, 3),
        k in 1usize..12,
    ) {
        let mut tree = RTree::with_capacity_per_node(3, 5);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p, i as u64);
        }
        let got = tree.nearest(&query, k);
        let mut want: Vec<(f64, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d2: f64 = p.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, i as u64)
            })
            .collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        want.truncate(k);
        // Compare distances (ids may tie at equal distance).
        let got_d: Vec<f64> = got
            .iter()
            .map(|(p, _)| p.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum())
            .collect();
        let want_d: Vec<f64> = want.iter().map(|(d, _)| *d).collect();
        prop_assert_eq!(got_d.len(), want_d.len());
        for (g, w) in got_d.iter().zip(&want_d) {
            prop_assert!((g - w).abs() < 1e-12, "distance mismatch: {} vs {}", g, w);
        }
    }

    /// Random insert/remove interleavings agree with the oracle and keep
    /// the structure valid.
    #[test]
    fn prop_dynamic_ops_match_oracle(
        ops in prop::collection::vec((prop::bool::ANY, 0u8..40, 0u8..40), 1..300),
        dim in 1usize..4,
    ) {
        let mut tree = RTree::with_capacity_per_node(dim, 5);
        let mut oracle = Oracle::default();
        let mut next_id = 0u64;
        let mut live: Vec<(Vec<f64>, u64)> = Vec::new();
        for (is_insert, a, b) in ops {
            if is_insert || live.is_empty() {
                let coords: Vec<f64> = (0..dim)
                    .map(|i| f64::from(if i % 2 == 0 { a } else { b }) / 4.0)
                    .collect();
                tree.insert(&coords, next_id);
                oracle.insert(&coords, next_id);
                live.push((coords, next_id));
                next_id += 1;
            } else {
                let pick = (usize::from(a) * 7 + usize::from(b)) % live.len();
                let (coords, id) = live.swap_remove(pick);
                prop_assert!(tree.remove(&coords, id));
                prop_assert!(oracle.remove(&coords, id));
            }
            tree.check_invariants(true);
            prop_assert_eq!(tree.len(), oracle.points.len());
        }
        let everything = Rect::new(&vec![0.0; dim], &vec![10.0; dim]);
        prop_assert_eq!(sorted(tree.window_collect(&everything)), sorted(oracle.window(&everything)));
    }

    /// Window queries over random boxes agree with linear scan.
    #[test]
    fn prop_window_matches_oracle(
        pts in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 0..150),
        corners in prop::collection::vec((prop::collection::vec(0.0f64..1.0, 3), prop::collection::vec(0.0f64..1.0, 3)), 1..8),
    ) {
        let mut tree = RTree::with_capacity_per_node(3, 6);
        let mut oracle = Oracle::default();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p, i as u64);
            oracle.insert(p, i as u64);
        }
        for (a, b) in corners {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            let w = Rect::new(&lo, &hi);
            prop_assert_eq!(sorted(tree.window_collect(&w)), sorted(oracle.window(&w)));
        }
    }

    /// Dominance predicates agree with linear scan, including ties from the
    /// coarse value grid.
    #[test]
    fn prop_dominance_matches_oracle(
        pts in prop::collection::vec(prop::collection::vec(0u8..6, 2), 1..100),
        probes in prop::collection::vec(prop::collection::vec(0u8..6, 2), 1..30),
    ) {
        let mut tree = RTree::new(2);
        let mut oracle = Oracle::default();
        for (i, p) in pts.iter().enumerate() {
            let coords: Vec<f64> = p.iter().map(|&v| f64::from(v)).collect();
            tree.insert(&coords, i as u64);
            oracle.insert(&coords, i as u64);
        }
        for probe in probes {
            let q: Vec<f64> = probe.iter().map(|&v| f64::from(v)).collect();
            prop_assert_eq!(tree.is_dominated(&q), oracle.is_dominated(&q));
            prop_assert_eq!(tree.is_ext_dominated(&q), oracle.is_ext_dominated(&q));
        }
    }

    /// remove_dominated_by removes exactly the dominated set.
    #[test]
    fn prop_remove_dominated(
        pts in prop::collection::vec(prop::collection::vec(0u8..5, 2), 1..80),
        probe in prop::collection::vec(0u8..5, 2),
    ) {
        let mut tree = RTree::new(2);
        let mut expected: Vec<u64> = Vec::new();
        let p: Vec<f64> = probe.iter().map(|&v| f64::from(v)).collect();
        for (i, raw) in pts.iter().enumerate() {
            let coords: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
            tree.insert(&coords, i as u64);
            let dominated = coords.iter().zip(&p).all(|(c, pv)| c >= pv)
                && coords.iter().zip(&p).any(|(c, pv)| c > pv);
            if dominated {
                expected.push(i as u64);
            }
        }
        let before = tree.len();
        let mut removed: Vec<u64> = tree.remove_dominated_by(&p).into_iter().map(|(_, id)| id).collect();
        removed.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(removed, expected.clone());
        prop_assert_eq!(tree.len(), before - expected.len());
        tree.check_invariants(true);
    }

    /// Bulk load stores exactly the input multiset for any size and dim.
    #[test]
    fn prop_bulk_load_roundtrip(
        pts in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4), 0..400),
    ) {
        let owned: Vec<(Vec<f64>, u64)> =
            pts.into_iter().enumerate().map(|(i, p)| (p, i as u64)).collect();
        let refs: Vec<(&[f64], u64)> = owned.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
        let tree = RTree::bulk_load(4, &refs);
        tree.check_invariants(false);
        prop_assert_eq!(sorted(tree.iter_all()), sorted(owned));
    }
}
