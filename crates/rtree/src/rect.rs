//! Axis-aligned minimum bounding rectangles of runtime dimensionality.

/// An axis-aligned box in `dim`-dimensional space.
///
/// `lo[i] <= hi[i]` holds on every axis for every rectangle produced by this
/// crate. A point is represented as a degenerate rectangle with `lo == hi`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners have different lengths or if `lo[i] > hi[i]`
    /// on any axis.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(lo.iter().zip(hi).all(|(l, h)| l <= h), "inverted rectangle: lo {lo:?} hi {hi:?}");
        Rect { lo: lo.into(), hi: hi.into() }
    }

    /// Creates the degenerate rectangle covering a single point.
    pub fn point(coords: &[f64]) -> Self {
        Rect { lo: coords.into(), hi: coords.into() }
    }

    /// Creates the rectangle `[0, corner]` anchored at the origin, the
    /// search region for "who dominates `corner`" in min-skyline space.
    pub fn from_origin(corner: &[f64]) -> Self {
        let lo = vec![0.0; corner.len()].into_boxed_slice();
        Rect { lo, hi: corner.into() }
    }

    /// Creates the unbounded-above rectangle `[corner, +inf)`, the search
    /// region for "whom does `corner` dominate".
    pub fn to_infinity(corner: &[f64]) -> Self {
        let hi = vec![f64::INFINITY; corner.len()].into_boxed_slice();
        Rect { lo: corner.into(), hi }
    }

    /// An "empty" rectangle that is the identity for [`Rect::grow`]:
    /// `lo = +inf`, `hi = -inf` on every axis. Not a valid stored rectangle.
    pub(crate) fn empty(dim: usize) -> Self {
        Rect {
            lo: vec![f64::INFINITY; dim].into_boxed_slice(),
            hi: vec![f64::NEG_INFINITY; dim].into_boxed_slice(),
        }
    }

    /// Dimensionality of the rectangle.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether `self` and `other` share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&*self.hi)
            .zip(other.lo.iter().zip(&*other.hi))
            .all(|((slo, shi), (olo, ohi))| slo <= ohi && olo <= shi)
    }

    /// Whether `self` fully contains `other`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&*self.hi)
            .zip(other.lo.iter().zip(&*other.hi))
            .all(|((slo, shi), (olo, ohi))| slo <= olo && ohi <= shi)
    }

    /// Whether the point `p` lies inside `self` (boundaries inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), p.len());
        self.lo.iter().zip(&*self.hi).zip(p).all(|((lo, hi), v)| lo <= v && v <= hi)
    }

    /// Grows `self` in place to cover `other`.
    pub fn grow(&mut self, other: &Rect) {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Grows `self` in place to cover the point `p`.
    pub fn grow_point(&mut self, p: &[f64]) {
        debug_assert_eq!(self.dim(), p.len());
        for (i, &v) in p.iter().enumerate() {
            if v < self.lo[i] {
                self.lo[i] = v;
            }
            if v > self.hi[i] {
                self.hi[i] = v;
            }
        }
    }

    /// Hyper-volume (product of side lengths). Degenerate boxes have zero
    /// volume; infinite boxes have infinite volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&*self.hi).map(|(lo, hi)| hi - lo).product()
    }

    /// Sum of side lengths. Used as a tie-break objective during splits:
    /// unlike volume it stays informative for degenerate (flat) boxes, which
    /// are common when indexing points.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(&*self.hi).map(|(lo, hi)| hi - lo).sum()
    }

    /// Volume of the smallest box covering both `self` and `other`.
    pub fn union_volume(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&*self.hi)
            .zip(other.lo.iter().zip(&*other.hi))
            .map(|((slo, shi), (olo, ohi))| shi.max(*ohi) - slo.min(*olo))
            .product()
    }

    /// How much the volume of `self` would increase if grown to cover
    /// `other` (the classic Guttman insertion heuristic).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union_volume(other) - self.volume()
    }

    /// L1 mindist from the origin: `Σ_i lo[i]`. This is the priority key
    /// of the BBS skyline algorithm (Papadias et al.): no point inside the
    /// box can have a smaller coordinate sum than the box's lower corner,
    /// and a point dominating the lower corner dominates every point in
    /// the box.
    #[inline]
    pub fn mindist_l1(&self) -> f64 {
        self.lo.iter().sum()
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn point_rect_is_degenerate() {
        let r = Rect::point(&[1.0, 2.0, 3.0]);
        assert_eq!(r.lo(), r.hi());
        assert_eq!(r.volume(), 0.0);
        assert!(r.contains_point(&[1.0, 2.0, 3.0]));
        assert!(!r.contains_point(&[1.0, 2.0, 3.1]));
    }

    #[test]
    fn from_origin_covers_dominators() {
        let r = Rect::from_origin(&[2.0, 3.0]);
        assert!(r.contains_point(&[0.0, 0.0]));
        assert!(r.contains_point(&[2.0, 3.0]));
        assert!(!r.contains_point(&[2.1, 0.0]));
    }

    #[test]
    fn to_infinity_covers_dominated() {
        let r = Rect::to_infinity(&[2.0, 3.0]);
        assert!(r.contains_point(&[2.0, 3.0]));
        assert!(r.contains_point(&[100.0, 100.0]));
        assert!(!r.contains_point(&[1.9, 100.0]));
    }

    #[test]
    fn intersects_is_symmetric_and_boundary_inclusive() {
        let a = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        let b = Rect::new(&[1.0, 1.0], &[2.0, 2.0]);
        let c = Rect::new(&[1.1, 0.0], &[2.0, 0.5]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
    }

    #[test]
    fn grow_produces_cover() {
        let mut a = Rect::new(&[0.0, 5.0], &[1.0, 6.0]);
        let b = Rect::new(&[-1.0, 7.0], &[0.5, 8.0]);
        a.grow(&b);
        assert!(a.contains_rect(&b));
        assert_eq!(a.lo(), &[-1.0, 5.0]);
        assert_eq!(a.hi(), &[1.0, 8.0]);
    }

    #[test]
    fn empty_is_grow_identity() {
        let mut e = Rect::empty(3);
        let r = Rect::new(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        e.grow(&r);
        assert_eq!(e, r);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = Rect::new(&[0.0, 0.0], &[10.0, 10.0]);
        let b = Rect::new(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rect_panics() {
        let _ = Rect::new(&[1.0], &[0.0]);
    }

    #[test]
    fn margin_handles_flat_boxes() {
        let flat = Rect::new(&[0.0, 1.0], &[5.0, 1.0]);
        assert_eq!(flat.volume(), 0.0);
        assert_eq!(flat.margin(), 5.0);
    }
}
