#![warn(missing_docs)]

//! Main-memory R-tree with runtime-chosen dimensionality.
//!
//! SKYPEER's local subspace-skyline computation (Algorithm 1 of the paper)
//! performs two hot operations against the set of skyline points found so
//! far:
//!
//! 1. *is the candidate dominated by any current skyline point?* — a window
//!    query over the box `[origin, candidate]`, and
//! 2. *drop every current skyline point the candidate dominates* — a window
//!    query over the box `[candidate, +inf)` followed by deletions.
//!
//! The paper performs both "in a way similar to traditional window queries
//! using a main-memory R-tree with dimensionality equal to the query
//! dimensionality" (Section 5.2.1). This crate provides exactly that
//! substrate: a Guttman R-tree held entirely in memory, with quadratic-split
//! insertion, deletion with orphan reinsertion, STR bulk loading, window
//! queries, and the two dominance-specific queries above.
//!
//! The tree stores points (degenerate rectangles) tagged with a `u64`
//! identifier. Dimensionality is fixed per tree at construction but chosen
//! at runtime, because the query dimensionality `k = |U|` varies per query.
//!
//! # Example
//!
//! ```
//! use skypeer_rtree::RTree;
//!
//! let mut tree = RTree::new(2);
//! tree.insert(&[1.0, 4.0], 1);
//! tree.insert(&[3.0, 2.0], 2);
//! tree.insert(&[4.0, 4.0], 3);
//!
//! // (4,4) is dominated by both (1,4) and (3,2).
//! assert!(tree.is_dominated(&[4.0, 4.0]));
//! // (0.5, 0.5) dominates everything.
//! let gone = tree.remove_dominated_by(&[0.5, 0.5]);
//! assert_eq!(gone.len(), 3);
//! assert!(tree.is_empty());
//! ```

mod rect;
mod tree;

pub use rect::Rect;
pub use tree::{NodeRef, RTree, TreeStats};

#[cfg(test)]
mod tests;
