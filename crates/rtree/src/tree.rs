//! The R-tree proper: arena-backed Guttman R-tree over points.

use crate::rect::Rect;

/// Default maximum number of entries per node.
const DEFAULT_MAX: usize = 16;

/// Index of a node inside the arena.
type NodeId = usize;

/// A point stored in a leaf: its coordinates and a caller-supplied tag.
#[derive(Clone, Debug)]
struct PointEntry {
    coords: Box<[f64]>,
    id: u64,
}

/// One tree node. Leaves (`level == 0`) hold points; internal nodes hold
/// child node ids. `mbr` always tightly bounds the node's contents.
#[derive(Clone, Debug)]
struct Node {
    level: u32,
    mbr: Rect,
    children: Vec<NodeId>,
    points: Vec<PointEntry>,
}

impl Node {
    fn leaf(dim: usize) -> Self {
        Node { level: 0, mbr: Rect::empty(dim), children: Vec::new(), points: Vec::new() }
    }

    fn internal(dim: usize, level: u32) -> Self {
        Node { level, mbr: Rect::empty(dim), children: Vec::new(), points: Vec::new() }
    }

    fn entry_count(&self) -> usize {
        if self.level == 0 {
            self.points.len()
        } else {
            self.children.len()
        }
    }
}

/// Structural statistics, mainly for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of stored points.
    pub len: usize,
    /// Height of the tree (a lone leaf root has height 1).
    pub height: usize,
    /// Total number of nodes, internal and leaf.
    pub nodes: usize,
}

/// A main-memory R-tree over `dim`-dimensional points.
///
/// See the [crate docs](crate) for the role this plays in SKYPEER. The tree
/// is not self-balancing in the R*-sense; it is the classic Guttman variant
/// with quadratic split, which is what the paper's era of systems used and
/// is plenty for the in-memory skyline workloads here.
#[derive(Clone, Debug)]
pub struct RTree {
    dim: usize,
    max_entries: usize,
    min_entries: usize,
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    root: NodeId,
    len: usize,
}

impl RTree {
    /// Creates an empty tree over `dim`-dimensional points with the default
    /// node capacity.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity_per_node(dim, DEFAULT_MAX)
    }

    /// Creates an empty tree with an explicit node fan-out `max_entries`
    /// (minimum fill is 40% of it, per the usual heuristic).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `max_entries < 4`.
    pub fn with_capacity_per_node(dim: usize, max_entries: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(max_entries >= 4, "node capacity must be at least 4");
        let root = Node::leaf(dim);
        RTree {
            dim,
            max_entries,
            min_entries: (max_entries * 2 / 5).max(1),
            nodes: vec![root],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Bulk-loads a tree from points using Sort-Tile-Recursive packing.
    ///
    /// Considerably faster and better-packed than repeated insertion; used
    /// when a super-peer (re)builds its query index over a known point set.
    ///
    /// # Panics
    ///
    /// Panics if any point has dimensionality other than `dim`.
    pub fn bulk_load(dim: usize, points: &[(&[f64], u64)]) -> Self {
        skypeer_obs::scope!("rtree::bulk_load");
        let mut tree = Self::new(dim);
        if points.is_empty() {
            return tree;
        }
        let mut entries: Vec<PointEntry> = points
            .iter()
            .map(|(coords, id)| {
                assert_eq!(coords.len(), dim, "point dimensionality mismatch");
                PointEntry { coords: (*coords).into(), id: *id }
            })
            .collect();
        tree.len = entries.len();

        // Build the leaf level by recursive tiling, then pack upward.
        let leaf_ids = tree.str_pack_leaves(&mut entries);
        tree.root = tree.pack_levels(leaf_ids, 1);
        tree
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality the tree was created with.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts a point with a caller-supplied tag. Duplicate coordinates and
    /// duplicate tags are allowed; the tree stores every inserted entry.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != self.dim()`.
    pub fn insert(&mut self, coords: &[f64], id: u64) {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        let entry = PointEntry { coords: coords.into(), id };
        self.insert_entry(entry);
        self.len += 1;
    }

    /// Removes one entry with exactly these coordinates and tag. Returns
    /// whether an entry was found and removed.
    pub fn remove(&mut self, coords: &[f64], id: u64) -> bool {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        let target = Rect::point(coords);
        let mut path = Vec::new();
        if !self.find_path(self.root, &target, coords, id, &mut path) {
            return false;
        }
        let leaf = *path.last().expect("find_path returned an empty path");
        let node = &mut self.nodes[leaf];
        let pos = node
            .points
            .iter()
            .position(|p| p.id == id && *p.coords == *coords)
            .expect("find_path returned a leaf without the entry");
        node.points.swap_remove(pos);
        self.len -= 1;
        self.condense_path(&path);
        true
    }

    /// Visits every stored point whose coordinates lie inside `window`
    /// (boundaries inclusive). The visitor returns `false` to stop early;
    /// the method returns `false` iff the visit was stopped.
    pub fn window<F: FnMut(&[f64], u64) -> bool>(&self, window: &Rect, mut visit: F) -> bool {
        skypeer_obs::scope!("rtree::window");
        assert_eq!(window.dim(), self.dim, "window dimensionality mismatch");
        if self.len == 0 {
            return true;
        }
        self.window_rec(self.root, window, &mut visit)
    }

    /// Collects every `(coords, id)` inside `window`.
    pub fn window_collect(&self, window: &Rect) -> Vec<(Vec<f64>, u64)> {
        let mut out = Vec::new();
        self.window(window, |coords, id| {
            out.push((coords.to_vec(), id));
            true
        });
        out
    }

    /// Whether any stored point *dominates* `q` under minimization: lies in
    /// `[0, q]` on every axis and is strictly smaller on at least one.
    ///
    /// Points exactly equal to `q` do not dominate it, matching the skyline
    /// dominance definition.
    pub fn is_dominated(&self, q: &[f64]) -> bool {
        let region = Rect::from_origin(q);
        !self.window(&region, |coords, _| {
            // Inside [0, q] already means <= on every axis; equality on all
            // axes is the only non-dominating case.
            let strictly_somewhere = coords.iter().zip(q).any(|(c, qv)| c < qv);
            !strictly_somewhere // keep searching only while not a dominator
        })
    }

    /// Whether any stored point *ext-dominates* `q`: strictly smaller on
    /// every axis (Definition 1 of the paper).
    pub fn is_ext_dominated(&self, q: &[f64]) -> bool {
        let region = Rect::from_origin(q);
        !self.window(&region, |coords, _| {
            let strict_everywhere = coords.iter().zip(q).all(|(c, qv)| c < qv);
            !strict_everywhere
        })
    }

    /// Removes and returns every stored point dominated by `p` (>= on every
    /// axis, strictly greater somewhere).
    pub fn remove_dominated_by(&mut self, p: &[f64]) -> Vec<(Vec<f64>, u64)> {
        let region = Rect::to_infinity(p);
        let victims: Vec<(Vec<f64>, u64)> = self
            .window_collect(&region)
            .into_iter()
            .filter(|(coords, _)| coords.iter().zip(p).any(|(c, pv)| c > pv))
            .collect();
        for (coords, id) in &victims {
            let removed = self.remove(coords, *id);
            debug_assert!(removed, "window query returned a phantom entry");
        }
        victims
    }

    /// Removes and returns every stored point ext-dominated by `p`
    /// (strictly greater on every axis).
    pub fn remove_ext_dominated_by(&mut self, p: &[f64]) -> Vec<(Vec<f64>, u64)> {
        let region = Rect::to_infinity(p);
        let victims: Vec<(Vec<f64>, u64)> = self
            .window_collect(&region)
            .into_iter()
            .filter(|(coords, _)| coords.iter().zip(p).all(|(c, pv)| c > pv))
            .collect();
        for (coords, id) in &victims {
            let removed = self.remove(coords, *id);
            debug_assert!(removed, "window query returned a phantom entry");
        }
        victims
    }

    /// The `k` nearest stored points to `query` by Euclidean distance,
    /// closest first (ties broken by insertion order). Best-first search
    /// over node MBRs; returns fewer than `k` when the tree is smaller.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(Vec<f64>, u64)> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Min-heap over (distance², seq) of nodes and points.
        #[derive(PartialEq)]
        struct Cand {
            d2: f64,
            seq: u64,
            node: Option<NodeId>,
            point: Option<(Vec<f64>, u64)>,
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .d2
                    .partial_cmp(&self.d2)
                    .expect("distances are finite")
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }
        let mbr_dist2 = |r: &Rect, q: &[f64]| -> f64 {
            q.iter()
                .enumerate()
                .map(|(i, &v)| {
                    let lo = r.lo()[i];
                    let hi = r.hi()[i];
                    let d = if v < lo {
                        lo - v
                    } else if v > hi {
                        v - hi
                    } else {
                        0.0
                    };
                    d * d
                })
                .sum()
        };
        let point_dist2 =
            |p: &[f64], q: &[f64]| -> f64 { p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum() };

        let mut heap = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Cand {
            d2: mbr_dist2(&self.nodes[self.root].mbr, query),
            seq,
            node: Some(self.root),
            point: None,
        });
        seq += 1;
        let mut out = Vec::with_capacity(k);
        while let Some(cand) = heap.pop() {
            match (cand.node, cand.point) {
                (Some(nid), _) => {
                    let node = &self.nodes[nid];
                    if node.level == 0 {
                        for p in &node.points {
                            heap.push(Cand {
                                d2: point_dist2(&p.coords, query),
                                seq,
                                node: None,
                                point: Some((p.coords.to_vec(), p.id)),
                            });
                            seq += 1;
                        }
                    } else {
                        for &c in &node.children {
                            heap.push(Cand {
                                d2: mbr_dist2(&self.nodes[c].mbr, query),
                                seq,
                                node: Some(c),
                                point: None,
                            });
                            seq += 1;
                        }
                    }
                }
                (None, Some(p)) => {
                    out.push(p);
                    if out.len() == k {
                        break;
                    }
                }
                (None, None) => unreachable!("candidate is a node or a point"),
            }
        }
        out
    }

    /// Collects all stored `(coords, id)` pairs in unspecified order.
    pub fn iter_all(&self) -> Vec<(Vec<f64>, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(nid) = stack.pop() {
            let node = &self.nodes[nid];
            if node.level == 0 {
                out.extend(node.points.iter().map(|p| (p.coords.to_vec(), p.id)));
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }

    /// A read-only handle to the root node, for algorithms that steer
    /// their own traversal (e.g. best-first search in BBS).
    pub fn root(&self) -> NodeRef<'_> {
        NodeRef { tree: self, id: self.root }
    }

    /// Structural statistics (length, height, node count).
    pub fn stats(&self) -> TreeStats {
        let mut nodes = 0usize;
        let mut stack = vec![self.root];
        while let Some(nid) = stack.pop() {
            nodes += 1;
            let node = &self.nodes[nid];
            if node.level > 0 {
                stack.extend_from_slice(&node.children);
            }
        }
        TreeStats { len: self.len, height: self.nodes[self.root].level as usize + 1, nodes }
    }

    /// Verifies every structural invariant, panicking with a description on
    /// the first violation. Intended for tests; O(n).
    ///
    /// `strict_fill` additionally enforces minimum node fill for non-root
    /// nodes. STR bulk loading legitimately produces one trailing underfull
    /// node per level, so pass `false` for bulk-loaded trees.
    pub fn check_invariants(&self, strict_fill: bool) {
        let mut counted = 0usize;
        self.check_node(self.root, None, strict_fill, &mut counted);
        assert_eq!(counted, self.len, "stored length {} != counted points {}", self.len, counted);
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, id: NodeId) {
        self.free.push(id);
    }

    fn check_node(
        &self,
        nid: NodeId,
        expected_level: Option<u32>,
        strict_fill: bool,
        counted: &mut usize,
    ) {
        let node = &self.nodes[nid];
        if let Some(lvl) = expected_level {
            assert_eq!(node.level, lvl, "node {nid} at wrong level");
        }
        let is_root = nid == self.root;
        let count = node.entry_count();
        if !is_root {
            assert!(count >= 1, "non-root node {nid} is empty");
            if strict_fill {
                assert!(
                    count >= self.min_entries,
                    "non-root node {nid} underfull: {count} < {}",
                    self.min_entries
                );
            }
        }
        assert!(count <= self.max_entries, "node {nid} overfull: {count}");
        if node.level == 0 {
            assert!(node.children.is_empty(), "leaf {nid} has children");
            *counted += node.points.len();
            let mut mbr = Rect::empty(self.dim);
            for p in &node.points {
                mbr.grow_point(&p.coords);
            }
            if !node.points.is_empty() {
                assert_eq!(mbr, node.mbr, "leaf {nid} MBR not tight");
            }
        } else {
            assert!(node.points.is_empty(), "internal node {nid} has points");
            assert!(!node.children.is_empty(), "internal node {nid} childless");
            let mut mbr = Rect::empty(self.dim);
            for &c in &node.children {
                mbr.grow(&self.nodes[c].mbr);
                self.check_node(c, Some(node.level - 1), strict_fill, counted);
            }
            assert_eq!(mbr, node.mbr, "internal node {nid} MBR not tight");
        }
    }

    fn window_rec<F: FnMut(&[f64], u64) -> bool>(
        &self,
        nid: NodeId,
        window: &Rect,
        visit: &mut F,
    ) -> bool {
        let node = &self.nodes[nid];
        if node.entry_count() == 0 || !node.mbr.intersects(window) {
            return true;
        }
        if node.level == 0 {
            for p in &node.points {
                if window.contains_point(&p.coords) && !visit(&p.coords, p.id) {
                    return false;
                }
            }
        } else {
            for &c in &node.children {
                if !self.window_rec(c, window, visit) {
                    return false;
                }
            }
        }
        true
    }

    /// Finds the leaf holding an entry with these coordinates and id,
    /// recording the root-to-leaf path in `path`. Returns whether found.
    fn find_path(
        &self,
        nid: NodeId,
        target: &Rect,
        coords: &[f64],
        id: u64,
        path: &mut Vec<NodeId>,
    ) -> bool {
        let node = &self.nodes[nid];
        if node.entry_count() == 0 || !node.mbr.contains_rect(target) {
            return false;
        }
        path.push(nid);
        if node.level == 0 {
            if node.points.iter().any(|p| p.id == id && *p.coords == *coords) {
                return true;
            }
            path.pop();
            return false;
        }
        for &c in &node.children {
            if self.find_path(c, target, coords, id, path) {
                return true;
            }
        }
        path.pop();
        false
    }

    // --- insertion -----------------------------------------------------

    fn insert_entry(&mut self, entry: PointEntry) {
        let target = Rect::point(&entry.coords);
        if let Some(new_node) = self.insert_rec(self.root, entry, &target) {
            self.grow_root(new_node);
        }
    }

    /// Recursive insert. Returns a freshly split-off sibling of `nid` if the
    /// node overflowed, to be installed by the caller.
    fn insert_rec(&mut self, nid: NodeId, entry: PointEntry, target: &Rect) -> Option<NodeId> {
        if self.nodes[nid].level == 0 {
            self.nodes[nid].mbr = if self.nodes[nid].points.is_empty() {
                target.clone()
            } else {
                let mut m = self.nodes[nid].mbr.clone();
                m.grow(target);
                m
            };
            self.nodes[nid].points.push(entry);
            if self.nodes[nid].points.len() > self.max_entries {
                return Some(self.split_leaf(nid));
            }
            return None;
        }

        let chosen = self.choose_subtree(nid, target);
        let split = self.insert_rec(chosen, entry, target);
        // Refresh this node's MBR from its (possibly changed) children.
        self.recompute_mbr(nid);
        if let Some(sibling) = split {
            self.nodes[nid].children.push(sibling);
            self.recompute_mbr(nid);
            if self.nodes[nid].children.len() > self.max_entries {
                return Some(self.split_internal(nid));
            }
        }
        None
    }

    /// Guttman's ChooseLeaf step: least enlargement, ties by least volume.
    fn choose_subtree(&self, nid: NodeId, target: &Rect) -> NodeId {
        let node = &self.nodes[nid];
        let mut best = node.children[0];
        let mut best_enl = f64::INFINITY;
        let mut best_vol = f64::INFINITY;
        for &c in &node.children {
            let mbr = &self.nodes[c].mbr;
            let enl = mbr.enlargement(target);
            let vol = mbr.volume();
            if enl < best_enl || (enl == best_enl && vol < best_vol) {
                best = c;
                best_enl = enl;
                best_vol = vol;
            }
        }
        best
    }

    fn grow_root(&mut self, sibling: NodeId) {
        let old_root = self.root;
        let level = self.nodes[old_root].level + 1;
        let mut new_root = Node::internal(self.dim, level);
        new_root.children.push(old_root);
        new_root.children.push(sibling);
        let rid = self.alloc(new_root);
        self.root = rid;
        self.recompute_mbr(rid);
    }

    fn recompute_mbr(&mut self, nid: NodeId) {
        let node = &self.nodes[nid];
        let mut mbr = Rect::empty(self.dim);
        if node.level == 0 {
            for p in &node.points {
                mbr.grow_point(&p.coords);
            }
        } else {
            for &c in &node.children {
                mbr.grow(&self.nodes[c].mbr);
            }
        }
        self.nodes[nid].mbr = mbr;
    }

    // --- quadratic split -----------------------------------------------

    fn split_leaf(&mut self, nid: NodeId) -> NodeId {
        let points = std::mem::take(&mut self.nodes[nid].points);
        let rects: Vec<Rect> = points.iter().map(|p| Rect::point(&p.coords)).collect();
        let (left_idx, right_idx) = self.quadratic_partition(&rects);
        let mut right_points = Vec::with_capacity(right_idx.len());
        let mut left_points = Vec::with_capacity(left_idx.len());
        let mut points: Vec<Option<PointEntry>> = points.into_iter().map(Some).collect();
        for i in left_idx {
            left_points.push(points[i].take().expect("index assigned twice in split"));
        }
        for i in right_idx {
            right_points.push(points[i].take().expect("index assigned twice in split"));
        }
        self.nodes[nid].points = left_points;
        self.recompute_mbr(nid);
        let mut sibling = Node::leaf(self.dim);
        sibling.points = right_points;
        let sid = self.alloc(sibling);
        self.recompute_mbr(sid);
        sid
    }

    fn split_internal(&mut self, nid: NodeId) -> NodeId {
        let children = std::mem::take(&mut self.nodes[nid].children);
        let rects: Vec<Rect> = children.iter().map(|&c| self.nodes[c].mbr.clone()).collect();
        let (left_idx, right_idx) = self.quadratic_partition(&rects);
        let left: Vec<NodeId> = left_idx.iter().map(|&i| children[i]).collect();
        let right: Vec<NodeId> = right_idx.iter().map(|&i| children[i]).collect();
        let level = self.nodes[nid].level;
        self.nodes[nid].children = left;
        self.recompute_mbr(nid);
        let mut sibling = Node::internal(self.dim, level);
        sibling.children = right;
        let sid = self.alloc(sibling);
        self.recompute_mbr(sid);
        sid
    }

    /// Guttman's quadratic split over a set of rectangles: returns the two
    /// index groups. Both groups are guaranteed at least `min_entries`
    /// members (assuming `rects.len() > max_entries >= 2 * min_entries`).
    fn quadratic_partition(&self, rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
        let n = rects.len();
        debug_assert!(n >= 2);

        // PickSeeds: the pair wasting the most area together.
        let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                let waste =
                    rects[i].union_volume(&rects[j]) - rects[i].volume() - rects[j].volume();
                if waste > worst {
                    worst = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }

        let mut group_a = vec![seed_a];
        let mut group_b = vec![seed_b];
        let mut mbr_a = rects[seed_a].clone();
        let mut mbr_b = rects[seed_b].clone();
        let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

        while !remaining.is_empty() {
            // If one group must absorb everything to reach minimum fill, do it.
            if group_a.len() + remaining.len() <= self.min_entries {
                group_a.append(&mut remaining);
                break;
            }
            if group_b.len() + remaining.len() <= self.min_entries {
                group_b.append(&mut remaining);
                break;
            }
            // PickNext: entry with maximal preference difference.
            let (mut pick_pos, mut pick_diff) = (0, f64::NEG_INFINITY);
            for (pos, &i) in remaining.iter().enumerate() {
                let da = mbr_a.enlargement(&rects[i]);
                let db = mbr_b.enlargement(&rects[i]);
                let diff = (da - db).abs();
                if diff > pick_diff {
                    pick_diff = diff;
                    pick_pos = pos;
                }
            }
            let i = remaining.swap_remove(pick_pos);
            let da = mbr_a.enlargement(&rects[i]);
            let db = mbr_b.enlargement(&rects[i]);
            // Prefer smaller enlargement; break ties by volume then count.
            let to_a = match da.partial_cmp(&db) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => {
                    let (va, vb) = (mbr_a.volume(), mbr_b.volume());
                    if va != vb {
                        va < vb
                    } else {
                        group_a.len() <= group_b.len()
                    }
                }
            };
            if to_a {
                group_a.push(i);
                mbr_a.grow(&rects[i]);
            } else {
                group_b.push(i);
                mbr_b.grow(&rects[i]);
            }
        }
        (group_a, group_b)
    }

    // --- deletion --------------------------------------------------------

    /// After removing a point from the leaf at the end of `path`, restore
    /// invariants along the root path only (Guttman's CondenseTree):
    /// dissolve underfull nodes bottom-up, reinsert their orphaned points,
    /// and tighten ancestor MBRs.
    fn condense_path(&mut self, path: &[NodeId]) {
        let mut orphaned: Vec<PointEntry> = Vec::new();
        for i in (1..path.len()).rev() {
            let nid = path[i];
            let parent = path[i - 1];
            if self.nodes[nid].entry_count() < self.min_entries {
                let pos = self.nodes[parent]
                    .children
                    .iter()
                    .position(|&c| c == nid)
                    .expect("condense path child not under its parent");
                self.nodes[parent].children.swap_remove(pos);
                self.orphan_subtree(nid, &mut orphaned);
            } else {
                self.recompute_mbr(nid);
            }
        }
        self.recompute_mbr(self.root);
        // Shrink a root that lost all but one child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].children.len() == 1 {
            let only = self.nodes[self.root].children[0];
            self.release(self.root);
            self.root = only;
        }
        if self.nodes[self.root].level > 0 && self.nodes[self.root].children.is_empty() {
            // Everything was deleted: reset to an empty leaf root.
            let dim = self.dim;
            self.release(self.root);
            let leaf = self.alloc(Node::leaf(dim));
            self.root = leaf;
        }
        for entry in orphaned {
            self.insert_entry(entry);
        }
    }

    fn orphan_subtree(&mut self, nid: NodeId, orphaned: &mut Vec<PointEntry>) {
        let node = std::mem::replace(&mut self.nodes[nid], Node::leaf(self.dim));
        if node.level == 0 {
            orphaned.extend(node.points);
        } else {
            for c in node.children {
                self.orphan_subtree(c, orphaned);
            }
        }
        self.release(nid);
    }

    // --- STR bulk load ---------------------------------------------------

    /// Packs point entries into leaves via Sort-Tile-Recursive and returns
    /// the leaf node ids in packing order.
    fn str_pack_leaves(&mut self, entries: &mut [PointEntry]) -> Vec<NodeId> {
        let cap = self.max_entries;
        let mut leaves = Vec::with_capacity(entries.len().div_ceil(cap));
        self.str_tile(entries, 0, cap, &mut |tree: &mut Self, chunk: &mut [PointEntry]| {
            let mut leaf = Node::leaf(tree.dim);
            leaf.points = chunk.to_vec();
            let id = tree.alloc(leaf);
            tree.recompute_mbr(id);
            leaves.push(id);
        });
        leaves
    }

    /// Recursive tiling: sort by `axis`, cut into slabs sized so that the
    /// remaining axes can tile each slab, recurse; emit chunks of `cap` at
    /// the final axis.
    fn str_tile(
        &mut self,
        entries: &mut [PointEntry],
        axis: usize,
        cap: usize,
        emit: &mut impl FnMut(&mut Self, &mut [PointEntry]),
    ) {
        if entries.is_empty() {
            return;
        }
        if axis + 1 == self.dim || entries.len() <= cap {
            entries.sort_by(|a, b| {
                a.coords[axis].partial_cmp(&b.coords[axis]).expect("NaN coordinate in R-tree")
            });
            for chunk in entries.chunks_mut(cap) {
                emit(self, chunk);
            }
            return;
        }
        entries.sort_by(|a, b| {
            a.coords[axis].partial_cmp(&b.coords[axis]).expect("NaN coordinate in R-tree")
        });
        let n_leaves = entries.len().div_ceil(cap);
        let remaining_axes = (self.dim - axis) as f64;
        let slabs = (n_leaves as f64).powf(1.0 / remaining_axes).ceil() as usize;
        let slab_size = entries.len().div_ceil(slabs.max(1));
        for slab in entries.chunks_mut(slab_size.max(1)) {
            self.str_tile(slab, axis + 1, cap, emit);
        }
    }

    /// Packs one level of nodes into parents until a single root remains.
    fn pack_levels(&mut self, mut level_nodes: Vec<NodeId>, mut level: u32) -> NodeId {
        while level_nodes.len() > 1 {
            let mut parents = Vec::with_capacity(level_nodes.len().div_ceil(self.max_entries));
            for chunk in level_nodes.chunks(self.max_entries) {
                let mut parent = Node::internal(self.dim, level);
                parent.children = chunk.to_vec();
                let pid = self.alloc(parent);
                self.recompute_mbr(pid);
                parents.push(pid);
            }
            level_nodes = parents;
            level += 1;
        }
        level_nodes.pop().expect("pack_levels called with no nodes")
    }
}

/// A read-only view of one tree node, for caller-steered traversals.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    tree: &'a RTree,
    id: NodeId,
}

impl<'a> NodeRef<'a> {
    /// The node's minimum bounding rectangle. Meaningless (inverted
    /// "empty" box) only for an empty root leaf.
    pub fn mbr(&self) -> &'a Rect {
        &self.tree.nodes[self.id].mbr
    }

    /// Whether this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        self.tree.nodes[self.id].level == 0
    }

    /// Child nodes (empty for leaves).
    pub fn children(&self) -> impl Iterator<Item = NodeRef<'a>> + '_ {
        let tree = self.tree;
        self.tree.nodes[self.id].children.iter().map(move |&c| NodeRef { tree, id: c })
    }

    /// Points stored in this leaf (empty for internal nodes).
    pub fn points(&self) -> impl Iterator<Item = (&'a [f64], u64)> + '_ {
        self.tree.nodes[self.id].points.iter().map(|p| (&*p.coords, p.id))
    }
}
