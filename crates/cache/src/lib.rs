#![warn(missing_docs)]

//! Subsumption-aware subspace skyline result cache.
//!
//! SKYPEER's central observation (Observations 3–4 of the paper) is that
//! the *extended* skyline `ext-SKY_V` contains `SKY_U` for every `U ⊆ V` —
//! and, stronger, that `SKY_U` of the *whole* dataset can be recovered from
//! `ext-SKY_V` alone by re-running the local kernel with standard dominance
//! (see [`skypeer_skyline::extended::refine_from_ext`]). A cached extended
//! result for one subspace therefore answers any later query for a
//! *contained* subspace locally, with zero network traffic.
//!
//! [`SubspaceCache`] implements that reuse:
//!
//! * entries are **extended** results keyed by [`Subspace`] and answer
//!   lookups for any contained subspace (the smallest covering entry is
//!   refined);
//! * eviction is **cost-aware** (GreedyDual-Size-Frequency): entries are
//!   weighted by the network bytes a hit saves per cached byte, so a small
//!   entry that short-circuits an expensive backbone fan-out outlives a
//!   large one that saves little;
//! * every entry carries the **epoch** it was admitted under; membership
//!   changes (peer joins, super-peer crashes/recoveries) bump the epoch
//!   and stale entries are rejected — and dropped — at lookup;
//! * [`SubspaceCache::plan_flight`] / [`SharedSubspaceCache`] implement
//!   **single-flight admission**: simultaneous identical or subsumed
//!   queries coalesce onto one backbone execution and share its result.

use skypeer_skyline::extended::refine_from_ext;
use skypeer_skyline::sorted::KernelStats;
use skypeer_skyline::{DominanceIndex, SortedDataset, Subspace};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Sizing and refinement knobs for a [`SubspaceCache`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Byte budget for cached extended results (wire-size accounting, the
    /// same [`SortedDataset::wire_bytes`] the network simulator charges).
    pub max_bytes: u64,
    /// Dominance index used when refining a cached extended result into a
    /// standard subspace skyline.
    pub index: DominanceIndex,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_bytes: 4 << 20, index: DominanceIndex::RTree }
    }
}

impl CacheConfig {
    /// A config with an explicit byte budget and the default index.
    pub fn with_max_bytes(max_bytes: u64) -> Self {
        CacheConfig { max_bytes, ..CacheConfig::default() }
    }
}

/// Monotonic counters describing cache behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries that consulted the cache (excludes single-flight followers'
    /// post-coalesce reads).
    pub lookups: u64,
    /// Hits served by an entry keyed by the queried subspace itself.
    pub exact_hits: u64,
    /// Hits served by refining a strictly larger covering entry.
    pub subsumption_hits: u64,
    /// Lookups no live entry could answer.
    pub misses: u64,
    /// Entries rejected (and dropped) at lookup because their epoch was
    /// older than the cache's.
    pub stale_rejects: u64,
    /// Queries that coalesced onto another query's in-flight execution
    /// instead of running their own.
    pub coalesced: u64,
    /// Entries admitted.
    pub admissions: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Cumulative network bytes hits avoided (each hit credits the bytes
    /// the backbone execution that built the entry actually shipped).
    pub bytes_saved: u64,
}

impl CacheStats {
    /// Exact plus subsumption hits.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.subsumption_hits
    }

    /// Subsumption-inclusive hit rate over all counted lookups, in `[0,1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups as f64
        }
    }

    /// Stable counter names and values, for folding into a metrics
    /// registry (e.g. `skypeer_obs::MetricsRegistry::bump`), whose
    /// Prometheus exposition then renders each as
    /// `skypeer_<name>_total`.
    pub fn counter_pairs(&self) -> [(&'static str, u64); 9] {
        [
            ("cache_lookups", self.lookups),
            ("cache_exact_hits", self.exact_hits),
            ("cache_subsumption_hits", self.subsumption_hits),
            ("cache_misses", self.misses),
            ("cache_stale_rejects", self.stale_rejects),
            ("cache_coalesced", self.coalesced),
            ("cache_admissions", self.admissions),
            ("cache_evictions", self.evictions),
            ("cache_bytes_saved", self.bytes_saved),
        ]
    }
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitKind {
    /// The queried subspace itself was cached.
    Exact,
    /// A strictly larger cached subspace was projected and refined.
    Subsumed,
}

/// A query answered from cache.
#[derive(Clone, Debug)]
pub struct CacheAnswer {
    /// Exact or subsumption hit.
    pub kind: HitKind,
    /// The cached subspace the answer was refined from.
    pub source: Subspace,
    /// `SKY_U`, still `f`-sorted (refined with standard dominance).
    pub result: SortedDataset,
    /// Result ids, sorted ascending — the engine's canonical result form.
    pub result_ids: Vec<u64>,
    /// Kernel work the local refinement cost (feeds the latency model).
    pub refine_stats: KernelStats,
    /// Network bytes this hit avoided re-shipping.
    pub saved_bytes: u64,
}

struct Entry {
    result: SortedDataset,
    epoch: u64,
    bytes: u64,
    saved_bytes: u64,
    freq: u64,
    priority: f64,
    last_touch: u64,
}

impl Entry {
    /// GDSF gain: network bytes a hit saves per cached byte.
    fn gain(&self) -> f64 {
        self.saved_bytes as f64 / self.bytes as f64
    }
}

/// Role a query of a simultaneous batch plays under single-flight
/// admission (see [`SubspaceCache::plan_flight`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightRole {
    /// Answerable from the cache right now.
    Served,
    /// First uncovered miss of its coverage group: executes the backbone
    /// query and admits the result.
    Leader,
    /// Covered by the leader at this batch index; shares that result
    /// instead of executing.
    Follower(usize),
}

/// The cache proper: extended subspace results with subsumption lookup,
/// cost-aware eviction, and epoch invalidation. Single-threaded; wrap in
/// [`SharedSubspaceCache`] for the live runtime.
pub struct SubspaceCache {
    config: CacheConfig,
    /// Keyed by subspace mask; `BTreeMap` so iteration — and therefore
    /// covering-entry selection and eviction tie-breaks — is deterministic.
    entries: BTreeMap<u32, Entry>,
    epoch: u64,
    /// GDSF clock: ratchets to the evicted priority so long-resident
    /// entries age out relative to fresh admissions.
    clock: f64,
    tick: u64,
    bytes: u64,
    stats: CacheStats,
}

impl SubspaceCache {
    /// An empty cache with the given config.
    pub fn new(config: CacheConfig) -> Self {
        SubspaceCache {
            config,
            entries: BTreeMap::new(),
            epoch: 0,
            clock: 0.0,
            tick: 0,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently cached.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Invalidate everything admitted so far: any membership or data
    /// change (peer join, super-peer crash or recovery) makes every cached
    /// global result potentially wrong, so the epoch moves and stale
    /// entries are rejected lazily at their next lookup.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Look the subspace up, counting the outcome in [`CacheStats`].
    pub fn lookup(&mut self, u: Subspace) -> Option<CacheAnswer> {
        skypeer_obs::scope!("cache::lookup");
        match self.answer_via(u) {
            Some(ans) => {
                self.count_hit(&ans);
                Some(ans)
            }
            None => {
                self.stats.lookups += 1;
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look the subspace up **without** counting a lookup/hit/miss — the
    /// read path for single-flight followers, whose outcome is already
    /// accounted as `coalesced`. Stale entries encountered are still
    /// dropped (and counted) — staleness is a correctness event, not an
    /// accounting one.
    pub fn answer_via(&mut self, u: Subspace) -> Option<CacheAnswer> {
        skypeer_obs::scope!("cache::answer_via");
        self.drop_stale_covering(u);
        let best = self
            .entries
            .iter()
            .filter(|(&m, _)| u.is_subset_of(Subspace::from_mask(m)))
            .min_by_key(|(&m, e)| (e.result.len(), Subspace::from_mask(m).k(), m))
            .map(|(&m, _)| m)?;
        self.tick += 1;
        let tick = self.tick;
        let clock = self.clock;
        let entry = self.entries.get_mut(&best).expect("selected entry exists");
        entry.freq += 1;
        entry.last_touch = tick;
        entry.priority = clock + entry.freq as f64 * entry.gain();
        let refined = refine_from_ext(&entry.result, u, self.config.index);
        let mut result_ids: Vec<u64> =
            (0..refined.result.len()).map(|i| refined.result.points().id(i)).collect();
        result_ids.sort_unstable();
        Some(CacheAnswer {
            kind: if best == u.mask() { HitKind::Exact } else { HitKind::Subsumed },
            source: Subspace::from_mask(best),
            result: refined.result,
            result_ids,
            refine_stats: refined.stats,
            saved_bytes: entry.saved_bytes,
        })
    }

    /// Whether a live entry covers `u` (drops stale covering entries as a
    /// side effect, like a lookup would, but performs no refinement).
    pub fn covers(&mut self, u: Subspace) -> bool {
        self.drop_stale_covering(u);
        self.entries.keys().any(|&m| u.is_subset_of(Subspace::from_mask(m)))
    }

    /// Admit the **extended** result for subspace `v`, replacing any
    /// previous entry for the same key. `saved_bytes` is the network
    /// volume the backbone execution shipped — the bytes every future hit
    /// avoids, and the numerator of the eviction gain. Returns `false`
    /// when the entry alone exceeds the byte budget and was not admitted.
    pub fn admit(&mut self, v: Subspace, ext_result: SortedDataset, saved_bytes: u64) -> bool {
        skypeer_obs::scope!("cache::admit");
        let bytes = ext_result.wire_bytes().max(1);
        if bytes > self.config.max_bytes {
            return false;
        }
        self.remove(v.mask());
        while self.bytes + bytes > self.config.max_bytes {
            self.evict_one();
        }
        self.tick += 1;
        let entry = Entry {
            result: ext_result,
            epoch: self.epoch,
            bytes,
            saved_bytes,
            freq: 1,
            priority: 0.0,
            last_touch: self.tick,
        };
        let priority = self.clock + entry.gain();
        self.entries.insert(v.mask(), Entry { priority, ..entry });
        self.bytes += bytes;
        self.stats.admissions += 1;
        true
    }

    /// Assign single-flight roles to a batch of simultaneous queries:
    /// cache-covered queries are [`FlightRole::Served`]; of the rest, the
    /// first query of each coverage group leads and every later query
    /// whose subspace the leader's contains coalesces onto it (counted in
    /// [`CacheStats::coalesced`]). Callers execute leaders only, admit
    /// their results, then answer followers via [`SubspaceCache::answer_via`].
    pub fn plan_flight(&mut self, subspaces: &[Subspace]) -> Vec<FlightRole> {
        let mut roles = Vec::with_capacity(subspaces.len());
        let mut leaders: Vec<(usize, Subspace)> = Vec::new();
        for (i, &u) in subspaces.iter().enumerate() {
            if self.covers(u) {
                roles.push(FlightRole::Served);
            } else if let Some(&(l, _)) = leaders.iter().find(|(_, v)| u.is_subset_of(*v)) {
                self.stats.coalesced += 1;
                roles.push(FlightRole::Follower(l));
            } else {
                leaders.push((i, u));
                roles.push(FlightRole::Leader);
            }
        }
        roles
    }

    fn count_hit(&mut self, ans: &CacheAnswer) {
        self.stats.lookups += 1;
        match ans.kind {
            HitKind::Exact => self.stats.exact_hits += 1,
            HitKind::Subsumed => self.stats.subsumption_hits += 1,
        }
        self.stats.bytes_saved += ans.saved_bytes;
    }

    fn drop_stale_covering(&mut self, u: Subspace) {
        let epoch = self.epoch;
        let stale: Vec<u32> = self
            .entries
            .iter()
            .filter(|(&m, e)| e.epoch != epoch && u.is_subset_of(Subspace::from_mask(m)))
            .map(|(&m, _)| m)
            .collect();
        for m in stale {
            self.remove(m);
            self.stats.stale_rejects += 1;
        }
    }

    fn remove(&mut self, mask: u32) {
        if let Some(e) = self.entries.remove(&mask) {
            self.bytes -= e.bytes;
        }
    }

    fn evict_one(&mut self) {
        // Stale entries are free wins: evict the oldest of those first.
        let epoch = self.epoch;
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.epoch != epoch)
            .min_by_key(|(&m, e)| (e.last_touch, m))
            .map(|(&m, _)| m)
            .or_else(|| {
                self.entries
                    .iter()
                    .min_by(|(am, a), (bm, b)| {
                        a.priority
                            .partial_cmp(&b.priority)
                            .expect("priorities are finite")
                            .then(a.last_touch.cmp(&b.last_touch))
                            .then(am.cmp(bm))
                    })
                    .map(|(&m, _)| m)
            })
            .expect("evict_one called on a non-empty over-budget cache");
        if let Some(e) = self.entries.get(&victim) {
            if e.priority > self.clock {
                self.clock = e.priority;
            }
        }
        self.remove(victim);
        self.stats.evictions += 1;
    }
}

/// How [`SharedSubspaceCache::begin`] resolved a query.
#[derive(Debug)]
pub enum Flight {
    /// Served from cache (possibly after coalescing onto another thread's
    /// execution).
    Hit(CacheAnswer),
    /// This thread leads: it must execute the backbone query and then call
    /// [`SharedSubspaceCache::complete`] (or [`SharedSubspaceCache::abort`]
    /// on failure) so waiting followers make progress.
    Lead,
}

struct FlightState {
    cache: SubspaceCache,
    in_flight: Vec<u32>,
}

/// Thread-safe wrapper for the live runtime: a [`SubspaceCache`] behind a
/// mutex plus a condvar implementing blocking single-flight admission.
#[derive(Clone)]
pub struct SharedSubspaceCache {
    inner: Arc<(Mutex<FlightState>, Condvar)>,
}

impl SharedSubspaceCache {
    /// An empty shared cache.
    pub fn new(config: CacheConfig) -> Self {
        SharedSubspaceCache {
            inner: Arc::new((
                Mutex::new(FlightState {
                    cache: SubspaceCache::new(config),
                    in_flight: Vec::new(),
                }),
                Condvar::new(),
            )),
        }
    }

    /// Resolve a query: a cache hit returns immediately; a miss covered by
    /// an in-flight execution blocks until that execution completes (or
    /// aborts) and is counted as coalesced; otherwise this caller becomes
    /// the leader.
    pub fn begin(&self, u: Subspace) -> Flight {
        let (lock, cv) = &*self.inner;
        let mut st = lock.lock().expect("cache lock");
        let mut coalesced = false;
        loop {
            let found = st.cache.answer_via(u);
            if let Some(ans) = found {
                if !coalesced {
                    st.cache.count_hit(&ans);
                }
                return Flight::Hit(ans);
            }
            let covered = st.in_flight.iter().any(|&m| u.is_subset_of(Subspace::from_mask(m)));
            if covered {
                if !coalesced {
                    st.cache.stats.coalesced += 1;
                    coalesced = true;
                }
                st = cv.wait(st).expect("cache lock");
                continue;
            }
            if !coalesced {
                st.cache.stats.lookups += 1;
                st.cache.stats.misses += 1;
            }
            st.in_flight.push(u.mask());
            return Flight::Lead;
        }
    }

    /// Leader success: admit the extended result for `v` and wake
    /// followers. Only call with a *complete* result — partial results
    /// (timeouts, dead children) must [`SharedSubspaceCache::abort`].
    pub fn complete(&self, v: Subspace, ext_result: SortedDataset, saved_bytes: u64) {
        let (lock, cv) = &*self.inner;
        let mut st = lock.lock().expect("cache lock");
        st.cache.admit(v, ext_result, saved_bytes);
        st.in_flight.retain(|&m| m != v.mask());
        cv.notify_all();
    }

    /// Leader failure: release the flight so followers retry (one of them
    /// will become the next leader).
    pub fn abort(&self, v: Subspace) {
        let (lock, cv) = &*self.inner;
        let mut st = lock.lock().expect("cache lock");
        st.in_flight.retain(|&m| m != v.mask());
        cv.notify_all();
    }

    /// Bump the epoch (membership changed); wakes waiters so nobody
    /// blocks on a flight whose answer is about to go stale.
    pub fn bump_epoch(&self) {
        let (lock, cv) = &*self.inner;
        lock.lock().expect("cache lock").cache.bump_epoch();
        cv.notify_all();
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        let (lock, _) = &*self.inner;
        lock.lock().expect("cache lock").cache.stats()
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_skyline::extended::{ext_skyline, ext_skyline_on};
    use skypeer_skyline::skycube::Skycube;
    use skypeer_skyline::{brute, Dominance, PointSet};

    fn grid_set(seed: u64, n: usize, dim: usize) -> PointSet {
        // Coordinates on a small integer grid so duplicate values — the
        // strict-inequality edge case of extended dominance — are common.
        let mut s = PointSet::new(dim);
        let mut state = seed | 1;
        for i in 0..n {
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                coords.push((state >> 33) as f64 % 7.0);
            }
            s.push(&coords, i as u64);
        }
        s
    }

    fn cache() -> SubspaceCache {
        SubspaceCache::new(CacheConfig::default())
    }

    #[test]
    fn exact_hit_after_admit() {
        let set = grid_set(7, 40, 3);
        let u = Subspace::from_dims(&[0, 2]);
        let ext = ext_skyline_on(&set, u, DominanceIndex::Linear);
        let mut c = cache();
        assert!(c.lookup(u).is_none());
        c.admit(u, ext.result, 1234);
        let ans = c.lookup(u).expect("hit");
        assert_eq!(ans.kind, HitKind::Exact);
        assert_eq!(ans.source, u);
        assert_eq!(ans.saved_bytes, 1234);
        assert_eq!(ans.result_ids, brute::skyline_ids(&set, u, Dominance::Standard));
        let st = c.stats();
        assert_eq!((st.lookups, st.exact_hits, st.misses, st.bytes_saved), (2, 1, 1, 1234));
    }

    #[test]
    fn subsumption_hits_match_skycube_oracle() {
        // One full-space extended entry must answer *every* subspace
        // exactly; the oracle is the skycube computed via the ext-skyline
        // (itself validated against brute force in skypeer-skyline).
        let set = grid_set(21, 60, 4);
        let ext = ext_skyline(&set, DominanceIndex::RTree);
        let cube = Skycube::compute_via_ext_skyline(&set);
        let mut c = cache();
        c.admit(Subspace::full(4), ext.result, 10);
        for u in Subspace::enumerate_all(4) {
            let ans = c.lookup(u).expect("full-space entry covers everything");
            let want = cube.skyline(u).expect("skycube has every subspace");
            assert_eq!(ans.result_ids, want, "U={u}");
            if u == Subspace::full(4) {
                assert_eq!(ans.kind, HitKind::Exact);
            } else {
                assert_eq!(ans.kind, HitKind::Subsumed);
            }
        }
        assert_eq!(c.stats().hits(), 15);
        assert!((c.stats().hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smallest_covering_entry_is_chosen() {
        let set = grid_set(3, 50, 4);
        let big = Subspace::full(4);
        let small = Subspace::from_dims(&[0, 1]);
        let mut c = cache();
        c.admit(big, ext_skyline(&set, DominanceIndex::Linear).result, 1);
        c.admit(small, ext_skyline_on(&set, small, DominanceIndex::Linear).result, 1);
        // {d0} is contained in both; the 2-d entry has (weakly) fewer
        // points and must win the tie-break chain.
        let ans = c.lookup(Subspace::from_dims(&[0])).expect("hit");
        assert_eq!(ans.source, small);
    }

    #[test]
    fn epoch_bump_rejects_stale_entries_at_lookup() {
        let set = grid_set(9, 30, 3);
        let u = Subspace::full(3);
        let mut c = cache();
        c.admit(u, ext_skyline(&set, DominanceIndex::Linear).result, 5);
        assert!(c.lookup(u).is_some());
        c.bump_epoch();
        assert!(c.lookup(u).is_none(), "stale entry must not serve");
        let st = c.stats();
        assert_eq!(st.stale_rejects, 1);
        assert_eq!(c.len(), 0, "stale entry is dropped, not kept");
        // Re-admission under the new epoch serves again.
        c.admit(u, ext_skyline(&set, DominanceIndex::Linear).result, 5);
        assert!(c.lookup(u).is_some());
    }

    #[test]
    fn eviction_respects_budget_and_prefers_low_gain() {
        let set = grid_set(5, 80, 3);
        let a = Subspace::from_dims(&[0, 1]);
        let b = Subspace::from_dims(&[1, 2]);
        let c_sub = Subspace::from_dims(&[0, 2]);
        let ra = ext_skyline_on(&set, a, DominanceIndex::Linear).result;
        let rb = ext_skyline_on(&set, b, DominanceIndex::Linear).result;
        let rc = ext_skyline_on(&set, c_sub, DominanceIndex::Linear).result;
        let budget = ra.wire_bytes() + rb.wire_bytes() + rc.wire_bytes() / 2;
        let mut c = SubspaceCache::new(CacheConfig::with_max_bytes(budget));
        c.admit(a, ra, 1_000_000); // high gain: expensive to recompute
        c.admit(b, rb, 1); // low gain: cheap to recompute
        assert_eq!(c.len(), 2);
        c.admit(c_sub, rc, 500_000);
        assert!(c.bytes() <= budget, "budget respected after eviction");
        assert_eq!(c.stats().evictions, 1);
        assert!(c.covers(a), "high-gain entry survives");
        assert!(!c.covers(b), "low-gain entry is the victim");
    }

    #[test]
    fn oversized_entry_is_refused() {
        let set = grid_set(11, 60, 3);
        let ext = ext_skyline(&set, DominanceIndex::Linear);
        let mut c = SubspaceCache::new(CacheConfig::with_max_bytes(8));
        assert!(!c.admit(Subspace::full(3), ext.result, 9));
        assert_eq!(c.stats().admissions, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn plan_flight_serves_leads_and_coalesces() {
        let set = grid_set(13, 40, 3);
        let full = Subspace::full(3);
        let xy = Subspace::from_dims(&[0, 1]);
        let mut c = cache();
        c.admit(xy, ext_skyline_on(&set, xy, DominanceIndex::Linear).result, 1);
        let batch = [Subspace::from_dims(&[0]), full, Subspace::from_dims(&[1, 2]), full, xy];
        let roles = c.plan_flight(&batch);
        assert_eq!(
            roles,
            vec![
                FlightRole::Served,      // {d0} ⊆ cached {d0,d1}
                FlightRole::Leader,      // full space: first miss
                FlightRole::Follower(1), // {d1,d2} ⊆ full, coalesces
                FlightRole::Follower(1), // identical to the leader
                FlightRole::Served,      // exact cached
            ]
        );
        assert_eq!(c.stats().coalesced, 2);
        // After the leader admits, followers are answered without new
        // lookup accounting.
        let before = c.stats().lookups;
        c.admit(full, ext_skyline(&set, DominanceIndex::Linear).result, 10);
        let ans = c.answer_via(Subspace::from_dims(&[1, 2])).expect("follower answered");
        assert_eq!(
            ans.result_ids,
            brute::skyline_ids(&set, Subspace::from_dims(&[1, 2]), Dominance::Standard)
        );
        assert_eq!(c.stats().lookups, before);
    }

    #[test]
    fn shared_cache_single_flight_coalesces_threads() {
        let set = grid_set(17, 50, 3);
        let full = Subspace::full(3);
        let shared = SharedSubspaceCache::new(CacheConfig::default());
        let leader = match shared.begin(full) {
            Flight::Lead => true,
            Flight::Hit(_) => false,
        };
        assert!(leader, "empty cache: first caller leads");
        // Followers (same or contained subspace) block until completion.
        let mut joins = Vec::new();
        for u in [full, Subspace::from_dims(&[0, 1])] {
            let shared = shared.clone();
            joins.push(std::thread::spawn(move || match shared.begin(u) {
                Flight::Hit(ans) => ans.result_ids,
                Flight::Lead => panic!("must coalesce onto the in-flight leader"),
            }));
        }
        // Give followers time to park on the condvar before completing.
        while shared.stats().coalesced < 2 {
            std::thread::yield_now();
        }
        let ext = ext_skyline(&set, DominanceIndex::Linear);
        shared.complete(full, ext.result, 77);
        let got: Vec<Vec<u64>> = joins.into_iter().map(|j| j.join().expect("join")).collect();
        assert_eq!(got[0], brute::skyline_ids(&set, full, Dominance::Standard));
        assert_eq!(
            got[1],
            brute::skyline_ids(&set, Subspace::from_dims(&[0, 1]), Dominance::Standard)
        );
        let st = shared.stats();
        assert_eq!(st.coalesced, 2);
        assert_eq!(st.misses, 1, "only the leader's miss is counted");
    }

    #[test]
    fn shared_cache_abort_elects_new_leader() {
        let full = Subspace::full(2);
        let shared = SharedSubspaceCache::new(CacheConfig::default());
        assert!(matches!(shared.begin(full), Flight::Lead));
        let waiter = {
            let shared = shared.clone();
            std::thread::spawn(move || shared.begin(full))
        };
        while shared.stats().coalesced < 1 {
            std::thread::yield_now();
        }
        shared.abort(full);
        match waiter.join().expect("join") {
            Flight::Lead => {}
            Flight::Hit(_) => panic!("aborted flight cannot produce a hit"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use skypeer_skyline::extended::ext_skyline_on;
    use skypeer_skyline::{brute, Dominance, PointSet};

    fn arb_grid_points(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
        // Values from {0..4} so duplicate coordinates (ties) are the norm,
        // exercising extended dominance's strict-inequality edge cases.
        prop::collection::vec(prop::collection::vec(0u8..5, dim), 1..40).prop_map(|rows| {
            rows.into_iter().map(|r| r.into_iter().map(f64::from).collect()).collect()
        })
    }

    proptest! {
        /// The tentpole exactness property: for every `U ⊆ V`, answering
        /// `SKY_U` by refining the cached `ext-SKY_V` equals the brute
        /// skyline of the original dataset.
        #[test]
        fn subsumption_answers_equal_brute_for_every_contained_subspace(
            rows in arb_grid_points(4),
            v_mask in 1u32..16,
        ) {
            let mut set = PointSet::new(4);
            for (i, r) in rows.iter().enumerate() {
                set.push(r, i as u64);
            }
            let v = Subspace::from_mask(v_mask);
            let mut c = SubspaceCache::new(CacheConfig::default());
            c.admit(v, ext_skyline_on(&set, v, DominanceIndex::Linear).result, 1);
            for u in Subspace::enumerate_all(4) {
                if !u.is_subset_of(v) {
                    prop_assert!(c.answer_via(u).is_none(), "U={u} ⊄ V={v} must miss");
                    continue;
                }
                let ans = c.lookup(u).expect("covered subspace must hit");
                prop_assert_eq!(
                    ans.result_ids,
                    brute::skyline_ids(&set, u, Dominance::Standard),
                    "U={} V={}", u, v
                );
            }
        }

        /// Eviction never exceeds the budget and never corrupts answers.
        #[test]
        fn eviction_preserves_budget_and_exactness(
            rows in arb_grid_points(3),
            budget in 64u64..2048,
        ) {
            let mut set = PointSet::new(3);
            for (i, r) in rows.iter().enumerate() {
                set.push(r, i as u64);
            }
            let mut c = SubspaceCache::new(CacheConfig::with_max_bytes(budget));
            for u in Subspace::enumerate_all(3) {
                c.admit(u, ext_skyline_on(&set, u, DominanceIndex::Linear).result, u.mask() as u64);
                prop_assert!(c.bytes() <= budget);
            }
            for u in Subspace::enumerate_all(3) {
                if let Some(ans) = c.lookup(u) {
                    prop_assert_eq!(ans.result_ids, brute::skyline_ids(&set, u, Dominance::Standard));
                }
            }
        }
    }
}
