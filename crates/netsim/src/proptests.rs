//! Property tests for the DES: conservation, determinism, and ordering
//! invariants under randomized relay protocols.

use crate::cost::{CostModel, WorkReport};
use crate::des::{Behavior, Context, LinkModel, Sim, SimTime};
use proptest::prelude::*;

/// A randomized relay node: on each message it forwards to a scripted set
/// of targets until its script is exhausted. Deterministic given the
/// script, arbitrary given proptest.
struct Scripted {
    /// Each delivered message pops one entry: the list of (target, bytes).
    script: Vec<Vec<(usize, u64)>>,
    delivered: Vec<(usize, SimTime)>,
    work_per_msg: u64,
}

impl Behavior for Scripted {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if let Some(batch) = self.script.pop() {
            for (to, bytes) in batch {
                ctx.send(to, bytes, vec![0]);
            }
        }
    }
    fn on_message(&mut self, from: usize, _msg: Vec<u8>, ctx: &mut dyn Context) {
        self.delivered.push((from, ctx.now()));
        ctx.report_work(WorkReport {
            dominance_tests: self.work_per_msg,
            points_scanned: 0,
            measured: None,
        });
        if let Some(batch) = self.script.pop() {
            for (to, bytes) in batch {
                ctx.send(to, bytes, vec![0]);
            }
        }
    }
}

fn build(scripts: &[Vec<Vec<(usize, u64)>>], work: u64) -> Vec<Scripted> {
    scripts
        .iter()
        .map(|s| Scripted { script: s.clone(), delivered: Vec::new(), work_per_msg: work })
        .collect()
}

fn script_strategy(n_nodes: usize) -> impl Strategy<Value = Vec<Vec<Vec<(usize, u64)>>>> {
    let batch = prop::collection::vec((0..n_nodes, 1u64..5000), 0..4);
    let script = prop::collection::vec(batch, 0..6);
    prop::collection::vec(script, n_nodes..=n_nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two identical runs produce identical statistics and node states.
    #[test]
    fn prop_runs_are_deterministic(scripts in script_strategy(4)) {
        let a = Sim::new(build(&scripts, 7), LinkModel::paper_4kbps(), CostModel::default()).run(0);
        let b = Sim::new(build(&scripts, 7), LinkModel::paper_4kbps(), CostModel::default()).run(0);
        prop_assert_eq!(a.stats, b.stats);
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(&na.delivered, &nb.delivered);
        }
    }

    /// Without drops, every sent message is eventually delivered
    /// (conservation), and byte counts equal the sum of declared sizes.
    #[test]
    fn prop_messages_are_conserved(scripts in script_strategy(3)) {
        let out = Sim::new(build(&scripts, 1), LinkModel::zero_delay(), CostModel::default()).run(0);
        // Count sends actually performed: pops happen on start (node 0)
        // and per delivery, so total sends = sum over nodes of batches
        // popped. Delivered = stats.messages. Compute sends from the
        // scripts by replaying the pop discipline: node 0 pops once at
        // start, every node pops once per delivered message.
        let mut expected_bytes = 0u64;
        let mut sent = 0u64;
        // Replay: scripts pop from the END (Vec::pop).
        let mut remaining: Vec<Vec<Vec<(usize, u64)>>> = scripts.clone();
        let mut inflight: std::collections::VecDeque<usize> = Default::default();
        if let Some(batch) = remaining[0].pop() {
            for (to, bytes) in batch {
                expected_bytes += bytes;
                sent += 1;
                inflight.push_back(to);
            }
        }
        // Zero-delay + FIFO heap order means delivery order here is
        // breadth-first in send order, matching the DES exactly.
        while let Some(node) = inflight.pop_front() {
            if let Some(batch) = remaining[node].pop() {
                for (to, bytes) in batch {
                    expected_bytes += bytes;
                    sent += 1;
                    inflight.push_back(to);
                }
            }
        }
        prop_assert_eq!(out.stats.messages, sent);
        prop_assert_eq!(out.stats.bytes, expected_bytes);
    }

    /// A node's deliveries are observed at non-decreasing simulated times,
    /// and total compute equals handler count × unit cost.
    #[test]
    fn prop_per_node_time_is_monotone(scripts in script_strategy(4), work in 1u64..1000) {
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 1, per_point_ns: 0 };
        let out = Sim::new(build(&scripts, work), LinkModel::paper_4kbps(), cost).run(0);
        let mut handled = 0u64;
        for node in &out.nodes {
            handled += node.delivered.len() as u64;
            for w in node.delivered.windows(2) {
                prop_assert!(w[0].1 <= w[1].1, "time ran backwards at a node");
            }
        }
        prop_assert_eq!(out.stats.compute_ns_total, handled * work);
        prop_assert_eq!(out.stats.messages, handled);
    }

    /// Slowing the links never reduces the completion time of the last
    /// event.
    #[test]
    fn prop_slower_links_never_finish_earlier(scripts in script_strategy(3)) {
        let fast = Sim::new(build(&scripts, 5), LinkModel::zero_delay(), CostModel::default()).run(0);
        let slow = Sim::new(build(&scripts, 5), LinkModel::paper_4kbps(), CostModel::default()).run(0);
        prop_assert!(slow.stats.last_event_at >= fast.stats.last_event_at);
        prop_assert_eq!(slow.stats.messages, fast.stats.messages, "link speed must not change delivery count");
    }
}
