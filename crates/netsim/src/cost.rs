//! Computation cost model: how much simulated service time a local
//! computation consumes.
//!
//! The paper reports "skyline query processing computational time" of its
//! Java implementation on 3 GHz Pentiums. We cannot (and need not)
//! reproduce those absolute numbers; what matters is that the *relative*
//! cost of the variants is driven by the same quantity — how much skyline
//! work each node performs. Two models are provided:
//!
//! * [`CostModel::Analytic`] — deterministic: service time is a linear
//!   function of kernel operation counts (dominance tests, points
//!   scanned). The default coefficients are calibrated to a few tens of
//!   nanoseconds per dominance test, the right order for the kernels in
//!   `skypeer-skyline` on modern hardware.
//! * [`CostModel::Measured`] — uses the actual wall time the Rust kernel
//!   took, for when realism beats reproducibility.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Operation counts a node reports for one handler invocation. Mirrors
/// `skypeer_skyline::sorted::KernelStats`, re-declared here so the network
/// layer does not depend on the skyline crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkReport {
    /// Pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Points read from inputs.
    pub points_scanned: u64,
    /// Wall time actually spent, when the caller measured it.
    pub measured: Option<Duration>,
}

impl WorkReport {
    /// A report from raw counts, with no wall-time measurement — the shape
    /// every analytic-model caller wants.
    pub fn from_counts(dominance_tests: u64, points_scanned: u64) -> Self {
        WorkReport { dominance_tests, points_scanned, measured: None }
    }
}

/// Translates a [`WorkReport`] into simulated service nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// `base + tests·per_test + points·per_point` nanoseconds.
    Analytic {
        /// Fixed per-invocation overhead (message handling, dispatch).
        base_ns: u64,
        /// Cost of one dominance test.
        per_test_ns: u64,
        /// Cost of scanning one point (sort access, projection, f-lookup).
        per_point_ns: u64,
    },
    /// Use the measured wall time; falls back to `Analytic` defaults when
    /// no measurement was supplied.
    Measured,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::Analytic { base_ns: 20_000, per_test_ns: 30, per_point_ns: 20 }
    }
}

impl CostModel {
    /// Service time for one handler invocation.
    pub fn service_ns(&self, work: &WorkReport) -> u64 {
        match *self {
            CostModel::Analytic { base_ns, per_test_ns, per_point_ns } => base_ns
                .saturating_add(work.dominance_tests.saturating_mul(per_test_ns))
                .saturating_add(work.points_scanned.saturating_mul(per_point_ns)),
            CostModel::Measured => match work.measured {
                Some(d) => d.as_nanos().min(u128::from(u64::MAX)) as u64,
                None => CostModel::default().service_ns(work),
            },
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn analytic_is_linear_in_counts() {
        let m = CostModel::Analytic { base_ns: 100, per_test_ns: 10, per_point_ns: 1 };
        let w = WorkReport { dominance_tests: 5, points_scanned: 7, measured: None };
        assert_eq!(m.service_ns(&w), 100 + 50 + 7);
        assert_eq!(m.service_ns(&WorkReport::default()), 100);
    }

    #[test]
    fn measured_uses_wall_time() {
        let w = WorkReport {
            dominance_tests: 1,
            points_scanned: 1,
            measured: Some(Duration::from_micros(3)),
        };
        assert_eq!(CostModel::Measured.service_ns(&w), 3_000);
    }

    #[test]
    fn measured_falls_back_to_analytic() {
        let w = WorkReport { dominance_tests: 10, points_scanned: 0, measured: None };
        assert_eq!(CostModel::Measured.service_ns(&w), CostModel::default().service_ns(&w));
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let m = CostModel::Analytic { base_ns: u64::MAX, per_test_ns: u64::MAX, per_point_ns: 1 };
        let w = WorkReport { dominance_tests: u64::MAX, points_scanned: u64::MAX, measured: None };
        assert_eq!(m.service_ns(&w), u64::MAX);
    }
}
