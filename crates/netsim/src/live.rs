//! Live threaded runtime: the same [`Behavior`] implementations as the
//! DES, but on real OS threads with crossbeam channels.
//!
//! This runtime exists to demonstrate that the SKYPEER protocol logic is
//! not a simulation artifact: every super-peer runs on its own thread,
//! messages really race, and the result must still be exact. It is used by
//! the integration tests (DES ↔ live agreement) and the `live_network`
//! example. Scale it to hundreds of nodes, not tens of thousands — that is
//! what the DES is for.
//!
//! Like the DES, the runtime accepts an optional [`Tracer`]
//! ([`run_live_multi_traced`]). Timestamps are nanoseconds since run
//! start; there is no link model, so a message's `queued_at`, `sent_at`
//! and `arrive_at` coincide. Event *order* in a live trace is whatever
//! the thread interleaving produced — only the DES promises deterministic
//! traces.

use crate::cost::WorkReport;
use crate::des::{Behavior, Context, SimTime};
use crossbeam::channel::{unbounded, Receiver, Sender};
use skypeer_obs::{DropReason, ProtoEvent, SamplerHandle, SpanCause, TraceEvent, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

enum Envelope {
    App { seq: u64, from: usize, msg: Vec<u8> },
    Shutdown,
}

/// Statistics of a live run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveStats {
    /// Messages delivered to handlers.
    pub messages: u64,
    /// Bytes put on the wire (as declared by senders).
    pub bytes: u64,
    /// Wall-clock duration until `finish` was signalled.
    pub elapsed: Duration,
}

/// Outcome of a live run: the nodes (in id order) and statistics.
pub struct LiveOutcome<B> {
    /// Final node states.
    pub nodes: Vec<B>,
    /// Run statistics.
    pub stats: LiveStats,
    /// Wall-clock nanoseconds since run start of each observed
    /// [`Context::finish`] call, in signal-arrival order (one entry per
    /// required finish; late finishes racing shutdown are not waited
    /// for). The live analogue of the DES finish hook.
    pub finish_times: Vec<SimTime>,
}

fn ns_since(started: Instant) -> SimTime {
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

struct LiveCtx<'a> {
    node: usize,
    started: Instant,
    senders: &'a [Sender<Envelope>],
    bytes: &'a AtomicU64,
    messages: &'a AtomicU64,
    finish_tx: &'a Sender<SimTime>,
    /// Timers armed during this handler: (fire-at, tag, timer seq).
    timers: &'a mut Vec<(Instant, u64, u64)>,
    tracer: Option<&'a Arc<dyn Tracer>>,
    /// Span id of the handler invocation this context serves.
    span: u64,
    /// `now()` when the handler was entered.
    span_begin: SimTime,
    msg_seq: &'a AtomicU64,
    timer_seq: &'a AtomicU64,
    /// Work reported by this handler (informational in live runs).
    work: WorkReport,
    /// Finishes declared by this handler.
    finishes: usize,
}

impl Context for LiveCtx<'_> {
    fn node_id(&self) -> usize {
        self.node
    }
    fn now(&self) -> SimTime {
        ns_since(self.started)
    }
    fn send(&mut self, to: usize, bytes: u64, msg: Vec<u8>) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        let seq = self.msg_seq.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        if let Some(tr) = self.tracer {
            tr.record(TraceEvent::Send {
                msg_seq: seq,
                span: self.span,
                from: self.node,
                to,
                bytes,
                queued_at: now,
                sent_at: now,
                arrive_at: now,
            });
        }
        // A send to a node that already shut down is a no-op, mirroring a
        // network send to a departed peer.
        if self.senders[to].send(Envelope::App { seq, from: self.node, msg }).is_err() {
            if let Some(tr) = self.tracer {
                tr.record(TraceEvent::Drop {
                    msg_seq: seq,
                    at: now,
                    from: self.node,
                    to,
                    reason: DropReason::DeadReceiver,
                });
            }
        }
    }
    fn set_timer(&mut self, delay: SimTime, tag: u64) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(tr) = self.tracer {
            tr.record(TraceEvent::TimerSet {
                timer_seq: seq,
                span: self.span,
                node: self.node,
                fire_at: self.now() + delay,
                tag,
            });
        }
        self.timers.push((Instant::now() + Duration::from_nanos(delay), tag, seq));
    }
    fn report_work(&mut self, work: WorkReport) {
        // Live time is real time; the report feeds only the trace.
        self.work.dominance_tests += work.dominance_tests;
        self.work.points_scanned += work.points_scanned;
    }
    fn finish(&mut self) {
        self.finishes += 1;
        let _ = self.finish_tx.send(ns_since(self.started));
    }
    fn note(&mut self, ev: ProtoEvent) {
        if let Some(tr) = self.tracer {
            tr.record(TraceEvent::Proto {
                span: self.span,
                node: self.node,
                at: self.span_begin,
                event: ev,
            });
        }
    }
}

/// Runs `nodes` live: `on_start` fires on `start`, then every node
/// processes its inbox on its own thread until some handler calls
/// [`Context::finish`] (or `timeout` expires — the run then returns
/// `None`, with node threads shut down either way).
pub fn run_live<B>(nodes: Vec<B>, start: usize, timeout: Duration) -> Option<LiveOutcome<B>>
where
    B: Behavior + Send + 'static,
{
    run_live_multi(nodes, &[start], 1, timeout)
}

/// Multi-start live run: `on_start` fires on every node in `starts`, and
/// the run succeeds once [`Context::finish`] has been signalled
/// `required_finishes` times within `timeout` — live concurrent query
/// batches.
///
/// # Panics
///
/// Panics on an empty or out-of-range `starts` list or
/// `required_finishes == 0`.
pub fn run_live_multi<B>(
    nodes: Vec<B>,
    starts: &[usize],
    required_finishes: usize,
    timeout: Duration,
) -> Option<LiveOutcome<B>>
where
    B: Behavior + Send + 'static,
{
    run_live_multi_traced(nodes, starts, required_finishes, timeout, None, None)
}

/// [`run_live_multi`] with an optional [`Tracer`] observing every node
/// thread. With `None` the emission sites reduce to a branch each, so
/// [`LiveStats`] is unaffected by the instrumentation.
///
/// When a [`SamplerHandle`] is supplied it keeps flushing metrics to its
/// file on its own interval while the run executes (it should sample the
/// same tracer), and the runtime forces one final flush after all node
/// threads have joined, so the metrics file always ends at the complete
/// run.
pub fn run_live_multi_traced<B>(
    nodes: Vec<B>,
    starts: &[usize],
    required_finishes: usize,
    timeout: Duration,
    tracer: Option<Arc<dyn Tracer>>,
    sampler: Option<&SamplerHandle>,
) -> Option<LiveOutcome<B>>
where
    B: Behavior + Send + 'static,
{
    assert!(!starts.is_empty(), "need at least one start node");
    assert!(required_finishes >= 1, "need at least one required finish");
    for &start in starts {
        assert!(start < nodes.len(), "start node {start} out of range");
    }
    let n = nodes.len();
    let started = Instant::now();
    let bytes = Arc::new(AtomicU64::new(0));
    let messages = Arc::new(AtomicU64::new(0));
    // Shared id spaces for trace correlation across node threads.
    let msg_seq = Arc::new(AtomicU64::new(0));
    let timer_seq = Arc::new(AtomicU64::new(0));
    let span_seq = Arc::new(AtomicU64::new(0));
    let (finish_tx, finish_rx) = unbounded::<SimTime>();

    let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);

    let mut handles = Vec::with_capacity(n);
    for (id, (mut node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
        let senders = Arc::clone(&senders);
        let bytes = Arc::clone(&bytes);
        let messages = Arc::clone(&messages);
        let msg_seq = Arc::clone(&msg_seq);
        let timer_seq = Arc::clone(&timer_seq);
        let span_seq = Arc::clone(&span_seq);
        let finish_tx = finish_tx.clone();
        let tracer = tracer.clone();
        let is_start = starts.contains(&id);
        handles.push(std::thread::spawn(move || {
            // Pending timers for this node: (deadline, tag, timer seq).
            let mut timers: Vec<(Instant, u64, u64)> = Vec::new();
            // Runs one handler invocation as a traced service span.
            let serve = |node: &mut B,
                         timers: &mut Vec<(Instant, u64, u64)>,
                         cause: SpanCause,
                         input: Option<(usize, Vec<u8>)>,
                         timer_tag: u64| {
                let span = span_seq.fetch_add(1, Ordering::Relaxed);
                let begin = ns_since(started);
                let mut armed: Vec<(Instant, u64, u64)> = Vec::new();
                let mut ctx = LiveCtx {
                    node: id,
                    started,
                    senders: &senders,
                    bytes: &bytes,
                    messages: &messages,
                    finish_tx: &finish_tx,
                    timers: &mut armed,
                    tracer: tracer.as_ref(),
                    span,
                    span_begin: begin,
                    msg_seq: &msg_seq,
                    timer_seq: &timer_seq,
                    work: WorkReport::default(),
                    finishes: 0,
                };
                match input {
                    Some((from, msg)) => node.on_message(from, msg, &mut ctx),
                    None => match cause {
                        SpanCause::Timer(_) => node.on_timer(timer_tag, &mut ctx),
                        _ => node.on_start(&mut ctx),
                    },
                }
                let (work, finishes) = (ctx.work, ctx.finishes);
                timers.extend(armed);
                if let Some(tr) = &tracer {
                    let end = ns_since(started);
                    tr.record(TraceEvent::Service {
                        span,
                        node: id,
                        begin,
                        end,
                        cause,
                        dominance_tests: work.dominance_tests,
                        points_scanned: work.points_scanned,
                        finished: finishes > 0,
                    });
                    for _ in 0..finishes {
                        tr.record(TraceEvent::Finish { span, node: id, at: end });
                    }
                }
            };
            if is_start {
                serve(&mut node, &mut timers, SpanCause::Start, None, 0);
            }
            loop {
                // Fire any expired timers before blocking again.
                let now = Instant::now();
                while let Some(pos) = timers.iter().position(|(at, _, _)| *at <= now) {
                    let (_, tag, seq) = timers.swap_remove(pos);
                    if let Some(tr) = &tracer {
                        tr.record(TraceEvent::TimerFire {
                            timer_seq: seq,
                            at: ns_since(started),
                            node: id,
                            tag,
                        });
                    }
                    serve(&mut node, &mut timers, SpanCause::Timer(seq), None, tag);
                }
                // Block until the next message or the earliest deadline.
                let env = match timers.iter().map(|(at, _, _)| *at).min() {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(Instant::now());
                        match rx.recv_timeout(wait) {
                            Ok(env) => env,
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    None => match rx.recv() {
                        Ok(env) => env,
                        Err(_) => break,
                    },
                };
                match env {
                    Envelope::App { seq, from, msg } => {
                        if let Some(tr) = &tracer {
                            tr.record(TraceEvent::Deliver {
                                msg_seq: seq,
                                at: ns_since(started),
                                from,
                                to: id,
                            });
                        }
                        serve(&mut node, &mut timers, SpanCause::Msg(seq), Some((from, msg)), 0);
                    }
                    Envelope::Shutdown => break,
                }
            }
            node
        }));
    }

    let deadline = Instant::now() + timeout;
    let mut finish_times: Vec<SimTime> = Vec::with_capacity(required_finishes);
    while finish_times.len() < required_finishes {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match finish_rx.recv_timeout(remaining) {
            Ok(at) => finish_times.push(at),
            Err(_) => break,
        }
    }
    let finished = finish_times.len() >= required_finishes;
    // Shutdown goes through the same FIFO channels, so every message sent
    // before the finish signal is processed first.
    for tx in senders.iter() {
        let _ = tx.send(Envelope::Shutdown);
    }
    let elapsed = started.elapsed();
    let mut nodes: Vec<B> = Vec::with_capacity(n);
    for h in handles {
        nodes.push(h.join().expect("node thread panicked"));
    }
    if let Some(s) = sampler {
        let _ = s.flush();
    }
    finished.then_some(LiveOutcome {
        nodes,
        stats: LiveStats {
            messages: messages.load(Ordering::Relaxed),
            bytes: bytes.load(Ordering::Relaxed),
            elapsed,
        },
        finish_times,
    })
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_obs::MemTracer;

    struct Ring {
        n: usize,
        hops: u64,
    }

    impl Behavior for Ring {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.send((ctx.node_id() + 1) % self.n, 64, vec![0]);
        }
        fn on_message(&mut self, _from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
            let hop = u64::from(msg[0]) + 1;
            if hop >= self.hops {
                ctx.finish();
            } else {
                ctx.send((ctx.node_id() + 1) % self.n, 64, vec![hop as u8]);
            }
        }
    }

    #[test]
    fn ring_completes_live() {
        let nodes: Vec<Ring> = (0..4).map(|_| Ring { n: 4, hops: 9 }).collect();
        let out = run_live(nodes, 0, Duration::from_secs(5)).expect("ring must complete");
        assert_eq!(out.stats.messages, 9);
        assert_eq!(out.stats.bytes, 9 * 64);
        assert_eq!(out.finish_times.len(), 1, "one finish time per required finish");
        assert!(out.finish_times[0] <= out.stats.elapsed.as_nanos() as u64);
    }

    #[test]
    fn timeout_returns_none() {
        struct Mute;
        impl Behavior for Mute {
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, _c: &mut dyn Context) {}
        }
        let out = run_live(vec![Mute, Mute], 0, Duration::from_millis(50));
        assert!(out.is_none(), "nothing ever finishes");
    }

    #[test]
    fn nodes_returned_in_id_order() {
        struct Tag(usize);
        impl Behavior for Tag {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.finish();
            }
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, _c: &mut dyn Context) {}
        }
        let out =
            run_live(vec![Tag(0), Tag(1), Tag(2)], 0, Duration::from_secs(1)).expect("finishes");
        for (i, t) in out.nodes.iter().enumerate() {
            assert_eq!(t.0, i);
        }
    }

    #[test]
    fn traced_live_run_records_consistent_events() {
        let tracer = Arc::new(MemTracer::new());
        let nodes: Vec<Ring> = (0..3).map(|_| Ring { n: 3, hops: 6 }).collect();
        let out = run_live_multi_traced(
            nodes,
            &[0],
            1,
            Duration::from_secs(5),
            Some(tracer.clone() as Arc<dyn Tracer>),
            None,
        )
        .expect("ring must complete");
        let events = tracer.take();
        let sends = events.iter().filter(|e| matches!(e, TraceEvent::Send { .. })).count() as u64;
        assert_eq!(sends, out.stats.messages);
        // Every message the stats counted was delivered (the run only
        // finishes after the last hop, and shutdown drains FIFO inboxes
        // behind it) — but late deliveries can race shutdown, so only the
        // finishing chain is guaranteed. At minimum the finish span exists.
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Service { finished: true, .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Finish { .. })));
        // Spans pair one Service per Deliver that reached a handler plus
        // the start span.
        let services = events.iter().filter(|e| matches!(e, TraceEvent::Service { .. })).count();
        let delivers = events.iter().filter(|e| matches!(e, TraceEvent::Deliver { .. })).count();
        assert_eq!(services, delivers + 1, "one span per delivered message, plus on_start");
    }

    #[test]
    fn sampler_exposes_metrics_of_a_live_run() {
        use skypeer_obs::Sampler;
        let dir = std::env::temp_dir().join(format!("skypeer-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("live.prom");
        let tracer = Arc::new(MemTracer::new());
        let handle = Sampler::start(Arc::clone(&tracer), &path, Duration::from_millis(5))
            .expect("sampler starts");
        let nodes: Vec<Ring> = (0..3).map(|_| Ring { n: 3, hops: 6 }).collect();
        let out = run_live_multi_traced(
            nodes,
            &[0],
            1,
            Duration::from_secs(5),
            Some(tracer.clone() as Arc<dyn Tracer>),
            Some(&handle),
        )
        .expect("ring must complete");
        // The runtime's post-join flush makes the file reflect at least
        // every send the stats counted.
        let text = std::fs::read_to_string(&path).expect("metrics file exists");
        let sent: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("skypeer_messages_sent_total "))
            .expect("messages_sent series present")
            .parse()
            .expect("integer value");
        assert_eq!(sent, out.stats.messages);
        handle.finish().expect("sampler stops");
        std::fs::remove_dir_all(&dir).ok();
    }
}
