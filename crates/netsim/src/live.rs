//! Live threaded runtime: the same [`Behavior`] implementations as the
//! DES, but on real OS threads with crossbeam channels.
//!
//! This runtime exists to demonstrate that the SKYPEER protocol logic is
//! not a simulation artifact: every super-peer runs on its own thread,
//! messages really race, and the result must still be exact. It is used by
//! the integration tests (DES ↔ live agreement) and the `live_network`
//! example. Scale it to hundreds of nodes, not tens of thousands — that is
//! what the DES is for.

use crate::cost::WorkReport;
use crate::des::{Behavior, Context, SimTime};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

enum Envelope {
    App { from: usize, msg: Vec<u8> },
    Shutdown,
}

/// Statistics of a live run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveStats {
    /// Messages delivered to handlers.
    pub messages: u64,
    /// Bytes put on the wire (as declared by senders).
    pub bytes: u64,
    /// Wall-clock duration until `finish` was signalled.
    pub elapsed: Duration,
}

/// Outcome of a live run: the nodes (in id order) and statistics.
pub struct LiveOutcome<B> {
    /// Final node states.
    pub nodes: Vec<B>,
    /// Run statistics.
    pub stats: LiveStats,
}

struct LiveCtx<'a> {
    node: usize,
    started: Instant,
    senders: &'a [Sender<Envelope>],
    bytes: &'a AtomicU64,
    messages: &'a AtomicU64,
    finish_tx: &'a Sender<()>,
    /// Timers armed during this handler: (fire-at, tag).
    timers: &'a mut Vec<(Instant, u64)>,
}

impl Context for LiveCtx<'_> {
    fn node_id(&self) -> usize {
        self.node
    }
    fn now(&self) -> SimTime {
        self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
    fn send(&mut self, to: usize, bytes: u64, msg: Vec<u8>) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        // A send to a node that already shut down is a no-op, mirroring a
        // network send to a departed peer.
        let _ = self.senders[to].send(Envelope::App { from: self.node, msg });
    }
    fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.timers.push((Instant::now() + Duration::from_nanos(delay), tag));
    }
    fn report_work(&mut self, _work: WorkReport) {
        // Live time is real time; the report is informational here.
    }
    fn finish(&mut self) {
        let _ = self.finish_tx.send(());
    }
}

/// Runs `nodes` live: `on_start` fires on `start`, then every node
/// processes its inbox on its own thread until some handler calls
/// [`Context::finish`] (or `timeout` expires — the run then returns
/// `None`, with node threads shut down either way).
pub fn run_live<B>(nodes: Vec<B>, start: usize, timeout: Duration) -> Option<LiveOutcome<B>>
where
    B: Behavior + Send + 'static,
{
    run_live_multi(nodes, &[start], 1, timeout)
}

/// Multi-start live run: `on_start` fires on every node in `starts`, and
/// the run succeeds once [`Context::finish`] has been signalled
/// `required_finishes` times within `timeout` — live concurrent query
/// batches.
///
/// # Panics
///
/// Panics on an empty or out-of-range `starts` list or
/// `required_finishes == 0`.
pub fn run_live_multi<B>(
    nodes: Vec<B>,
    starts: &[usize],
    required_finishes: usize,
    timeout: Duration,
) -> Option<LiveOutcome<B>>
where
    B: Behavior + Send + 'static,
{
    assert!(!starts.is_empty(), "need at least one start node");
    assert!(required_finishes >= 1, "need at least one required finish");
    for &start in starts {
        assert!(start < nodes.len(), "start node {start} out of range");
    }
    let n = nodes.len();
    let started = Instant::now();
    let bytes = Arc::new(AtomicU64::new(0));
    let messages = Arc::new(AtomicU64::new(0));
    let (finish_tx, finish_rx) = unbounded::<()>();

    let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);

    let mut handles = Vec::with_capacity(n);
    for (id, (mut node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
        let senders = Arc::clone(&senders);
        let bytes = Arc::clone(&bytes);
        let messages = Arc::clone(&messages);
        let finish_tx = finish_tx.clone();
        let is_start = starts.contains(&id);
        handles.push(std::thread::spawn(move || {
            // Pending timers for this node: (deadline, tag).
            let mut timers: Vec<(Instant, u64)> = Vec::new();
            if is_start {
                let mut ctx = LiveCtx {
                    node: id,
                    started,
                    senders: &senders,
                    bytes: &bytes,
                    messages: &messages,
                    finish_tx: &finish_tx,
                    timers: &mut timers,
                };
                node.on_start(&mut ctx);
            }
            loop {
                // Fire any expired timers before blocking again.
                let now = Instant::now();
                while let Some(pos) = timers.iter().position(|(at, _)| *at <= now) {
                    let (_, tag) = timers.swap_remove(pos);
                    let mut fired: Vec<(Instant, u64)> = Vec::new();
                    let mut ctx = LiveCtx {
                        node: id,
                        started,
                        senders: &senders,
                        bytes: &bytes,
                        messages: &messages,
                        finish_tx: &finish_tx,
                        timers: &mut fired,
                    };
                    node.on_timer(tag, &mut ctx);
                    timers.extend(fired);
                }
                // Block until the next message or the earliest deadline.
                let env = match timers.iter().map(|(at, _)| *at).min() {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(Instant::now());
                        match rx.recv_timeout(wait) {
                            Ok(env) => env,
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    None => match rx.recv() {
                        Ok(env) => env,
                        Err(_) => break,
                    },
                };
                match env {
                    Envelope::App { from, msg } => {
                        let mut armed: Vec<(Instant, u64)> = Vec::new();
                        let mut ctx = LiveCtx {
                            node: id,
                            started,
                            senders: &senders,
                            bytes: &bytes,
                            messages: &messages,
                            finish_tx: &finish_tx,
                            timers: &mut armed,
                        };
                        node.on_message(from, msg, &mut ctx);
                        timers.extend(armed);
                    }
                    Envelope::Shutdown => break,
                }
            }
            node
        }));
    }

    let deadline = Instant::now() + timeout;
    let mut finishes = 0usize;
    while finishes < required_finishes {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match finish_rx.recv_timeout(remaining) {
            Ok(()) => finishes += 1,
            Err(_) => break,
        }
    }
    let finished = finishes >= required_finishes;
    // Shutdown goes through the same FIFO channels, so every message sent
    // before the finish signal is processed first.
    for tx in senders.iter() {
        let _ = tx.send(Envelope::Shutdown);
    }
    let elapsed = started.elapsed();
    let mut nodes: Vec<B> = Vec::with_capacity(n);
    for h in handles {
        nodes.push(h.join().expect("node thread panicked"));
    }
    finished.then_some(LiveOutcome {
        nodes,
        stats: LiveStats {
            messages: messages.load(Ordering::Relaxed),
            bytes: bytes.load(Ordering::Relaxed),
            elapsed,
        },
    })
}

#[cfg(test)]
mod unit {
    use super::*;

    struct Ring {
        n: usize,
        hops: u64,
    }

    impl Behavior for Ring {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.send((ctx.node_id() + 1) % self.n, 64, vec![0]);
        }
        fn on_message(&mut self, _from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
            let hop = u64::from(msg[0]) + 1;
            if hop >= self.hops {
                ctx.finish();
            } else {
                ctx.send((ctx.node_id() + 1) % self.n, 64, vec![hop as u8]);
            }
        }
    }

    #[test]
    fn ring_completes_live() {
        let nodes: Vec<Ring> = (0..4).map(|_| Ring { n: 4, hops: 9 }).collect();
        let out = run_live(nodes, 0, Duration::from_secs(5)).expect("ring must complete");
        assert_eq!(out.stats.messages, 9);
        assert_eq!(out.stats.bytes, 9 * 64);
    }

    #[test]
    fn timeout_returns_none() {
        struct Mute;
        impl Behavior for Mute {
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, _c: &mut dyn Context) {}
        }
        let out = run_live(vec![Mute, Mute], 0, Duration::from_millis(50));
        assert!(out.is_none(), "nothing ever finishes");
    }

    #[test]
    fn nodes_returned_in_id_order() {
        struct Tag(usize);
        impl Behavior for Tag {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.finish();
            }
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, _c: &mut dyn Context) {}
        }
        let out =
            run_live(vec![Tag(0), Tag(1), Tag(2)], 0, Duration::from_secs(1)).expect("finishes");
        for (i, t) in out.nodes.iter().enumerate() {
            assert_eq!(t.0, i);
        }
    }
}
