//! Deterministic discrete-event simulator.
//!
//! Nodes implement [`Behavior`]; the simulator delivers messages in global
//! time order, models each node as a sequential processor (a node is busy
//! while its handler's *service time* elapses), and charges every message a
//! transfer delay of `latency + bytes / bandwidth` on its link — the
//! paper's 4 KB/s-per-connection model.
//!
//! Determinism: given the same behaviors and inputs, runs are bit-for-bit
//! identical. Time is `u64` nanoseconds; heap ties are broken by an
//! insertion sequence number.
//!
//! Links are FIFO: two messages sent over the same directed link are
//! delivered in send order even when the earlier one is larger (as a TCP
//! connection would behave). SKYPEER's fixed-merging mode depends on this —
//! a small "subtree complete" marker must not overtake a large relayed
//! result list.

use crate::cost::{CostModel, WorkReport};
use skypeer_obs::{DropReason, ProtoEvent, SpanCause, TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Simulated time in nanoseconds since the start of a run.
pub type SimTime = u64;

/// Per-link transfer model: transferring a message occupies its directed
/// link for `latency_ns + bytes · ns_per_byte`; concurrent messages on the
/// same link queue behind each other (a 4 KB/s connection moves 4 KB per
/// second *in total*, as the paper's model implies). Queuing also gives
/// FIFO delivery per link for free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkModel {
    /// Fixed per-hop latency.
    pub latency_ns: u64,
    /// Nanoseconds per transferred byte.
    pub ns_per_byte: u64,
}

impl LinkModel {
    /// The paper's 4 KB/s connection bandwidth, zero base latency.
    pub fn paper_4kbps() -> Self {
        // 1 byte / 4096 B/s = 244140.625 ns; round to keep integer math.
        LinkModel { latency_ns: 0, ns_per_byte: 244_141 }
    }

    /// Infinite bandwidth — used to measure computation-only response time.
    pub fn zero_delay() -> Self {
        LinkModel { latency_ns: 0, ns_per_byte: 0 }
    }

    /// Transfer delay for one message of `bytes`.
    pub fn delay(&self, bytes: u64) -> u64 {
        self.latency_ns.saturating_add(bytes.saturating_mul(self.ns_per_byte))
    }
}

/// Parses a `--perturb-link FROM:TO:LATENCY_NS[:NS_PER_BYTE]` spec into a
/// directed-link override. An omitted `NS_PER_BYTE` keeps `base`'s
/// per-byte cost and only replaces the latency. Shared by every front end
/// that accepts the flag so the accepted grammar — and the error text —
/// cannot drift between them.
pub fn parse_perturb_spec(
    spec: &str,
    base: LinkModel,
) -> Result<(usize, usize, LinkModel), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 3 || parts.len() > 4 {
        return Err(format!(
            "bad --perturb-link '{spec}' (expected FROM:TO:LATENCY_NS[:NS_PER_BYTE])"
        ));
    }
    let field = |i: usize, what: &str| -> Result<u64, String> {
        parts[i].parse().map_err(|_| format!("bad {what} '{}' in --perturb-link", parts[i]))
    };
    let from = field(0, "FROM")? as usize;
    let to = field(1, "TO")? as usize;
    let latency_ns = field(2, "LATENCY_NS")?;
    let ns_per_byte = if parts.len() == 4 { field(3, "NS_PER_BYTE")? } else { base.ns_per_byte };
    Ok((from, to, LinkModel { latency_ns, ns_per_byte }))
}

/// What a node can do while handling an event. Implemented by both the DES
/// and the live runtime.
pub trait Context {
    /// This node's id.
    fn node_id(&self) -> usize;
    /// Current simulated (or wall) time.
    fn now(&self) -> SimTime;
    /// Sends `msg` (`bytes` long on the wire) to node `to`.
    fn send(&mut self, to: usize, bytes: u64, msg: Vec<u8>);
    /// Arms a one-shot timer: [`Behavior::on_timer`] fires on this node
    /// with `tag` after `delay` (simulated or wall time). Timers are local
    /// — they cost no messages and no bytes.
    fn set_timer(&mut self, delay: SimTime, tag: u64);
    /// Reports computation performed by this handler invocation; the
    /// runtime turns it into service time via its [`CostModel`].
    fn report_work(&mut self, work: WorkReport);
    /// Declares the global computation finished (e.g. the query initiator
    /// has the final answer). The runtime stops delivering messages.
    fn finish(&mut self);
    /// Emits a protocol-level observability event ([`ProtoEvent`]:
    /// threshold installs/refinements, prunes, query phase transitions).
    /// A no-op unless the runtime has a [`Tracer`] attached, so behaviors
    /// can call it unconditionally.
    fn note(&mut self, _ev: ProtoEvent) {}
}

/// A node's protocol logic. Messages are byte buffers; protocol crates
/// define their own typed envelope and (de)serialize at the boundary,
/// which keeps this substrate independent of any particular protocol and
/// makes wire sizes honest.
pub trait Behavior {
    /// Invoked once at start-of-run on the designated start node.
    fn on_start(&mut self, _ctx: &mut dyn Context) {}
    /// Invoked for every delivered message.
    fn on_message(&mut self, from: usize, msg: Vec<u8>, ctx: &mut dyn Context);
    /// Invoked when a timer armed via [`Context::set_timer`] expires.
    fn on_timer(&mut self, _tag: u64, _ctx: &mut dyn Context) {}
}

/// Per-node / per-link breakdowns, collected when
/// [`Sim::with_breakdown`] is enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimBreakdown {
    /// Total computation service time per node, ns.
    pub compute_ns: Vec<u64>,
    /// Messages handled per node.
    pub handled: Vec<u64>,
    /// Bytes sent per directed link.
    pub link_bytes: HashMap<(usize, usize), u64>,
}

impl SimBreakdown {
    /// The busiest node by compute time, `(node, ns)`. Ties go to the
    /// smallest node id so the answer is deterministic.
    pub fn hottest_node(&self) -> Option<(usize, u64)> {
        self.compute_ns.iter().copied().enumerate().max_by_key(|&(i, ns)| (ns, Reverse(i)))
    }

    /// The busiest directed link by bytes, `((from, to), bytes)`. Ties go
    /// to the lexicographically smallest link so the answer does not
    /// depend on `HashMap` iteration order.
    pub fn hottest_link(&self) -> Option<((usize, usize), u64)> {
        self.link_bytes.iter().map(|(&l, &b)| (l, b)).max_by_key(|&(l, b)| (b, Reverse(l)))
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered.
    pub messages: u64,
    /// Total bytes put on the wire.
    pub bytes: u64,
    /// Total computation service time across all nodes.
    pub compute_ns_total: u64,
    /// Simulated time at which [`Context::finish`] was called (response
    /// time), if it was.
    pub finished_at: Option<SimTime>,
    /// Simulated time when the last event was processed.
    pub last_event_at: SimTime,
    /// Messages dropped by the failure-injection hook.
    pub dropped: u64,
    /// Maximum causal message depth over all delivered messages: a
    /// message sent from the start-of-run handler is depth 1, a message
    /// sent while handling a depth-`d` message is depth `d + 1`
    /// (zero-byte self-messages and timers inherit their cause's depth —
    /// they model deferred local work, not network round trips). This is
    /// the number of sequential communication rounds the protocol needs,
    /// independent of link speed.
    pub rounds: u64,
}

enum Payload {
    Message { from: usize, msg: Vec<u8> },
    Timer { tag: u64 },
}

struct Event {
    time: SimTime,
    seq: u64,
    to: usize,
    /// Causal message depth (see [`SimStats::rounds`]).
    depth: u64,
    payload: Payload,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Outcome of [`Sim::run`]: final node states plus statistics.
pub struct SimOutcome<B> {
    /// The nodes after the run, for extracting protocol results.
    pub nodes: Vec<B>,
    /// Run statistics.
    pub stats: SimStats,
    /// Per-node / per-link breakdowns, when enabled.
    pub breakdown: Option<SimBreakdown>,
}

/// Failure-injection callback: sees `(from, to, msg)` and returns `true`
/// to drop the message.
pub type DropHook = Box<dyn FnMut(usize, usize, &[u8]) -> bool>;

/// Delivery observer: `(time, from, to, msg)` for every delivered message,
/// in delivery order. For tracing, visualization, and protocol tests.
pub type TraceHook = Box<dyn FnMut(SimTime, usize, usize, &[u8])>;

/// Finish observer: `(node, at)` for every [`Context::finish`] call, in
/// execution order. Lets a workload driver timestamp each query's
/// completion inside a multi-query batch, where `SimStats::finished_at`
/// only reports the last one (the makespan).
pub type FinishHook = Box<dyn FnMut(usize, SimTime)>;

/// Corruption-injection callback: sees `(from, to, msg)` just before
/// delivery and returns `Some(replacement)` to tamper with the payload.
/// Timing and declared wire bytes were fixed at send time, so tampering
/// only changes what the receiver decodes — exactly the silent-corruption
/// model the online auditor is built to catch.
pub type TamperHook = Box<dyn FnMut(usize, usize, &[u8]) -> Option<Vec<u8>>>;

/// The discrete-event simulator.
pub struct Sim<B: Behavior> {
    nodes: Vec<B>,
    link: LinkModel,
    /// Per-directed-link overrides of the global [`LinkModel`] — the
    /// hook what-if experiments and perturbed runs use to slow down (or
    /// speed up) a single link without touching the rest of the network.
    link_overrides: HashMap<(usize, usize), LinkModel>,
    cost: CostModel,
    /// Optional failure injection.
    drop_hook: Option<DropHook>,
    /// Optional corruption injection.
    tamper_hook: Option<TamperHook>,
    /// Optional delivery observer.
    trace_hook: Option<TraceHook>,
    /// Optional per-finish observer.
    finish_hook: Option<FinishHook>,
    /// Optional structured-event tracer. With `None` every emission site
    /// is a single branch, so untraced runs behave exactly like the seed
    /// simulator (bit-for-bit identical `SimStats` / `SimBreakdown`).
    tracer: Option<Arc<dyn Tracer>>,
    /// Nodes that crash at a given simulated time: after it, they neither
    /// receive nor send, and their pending timers never fire.
    fail_at: HashMap<usize, SimTime>,
    /// Whether to collect per-node / per-link breakdowns.
    breakdown: bool,
    /// Safety valve against runaway protocols.
    max_events: u64,
}

/// Context implementation handed to behaviors during DES runs.
struct DesCtx {
    node: usize,
    now: SimTime,
    outbox: Vec<(usize, u64, Vec<u8>)>,
    timers: Vec<(SimTime, u64)>,
    work: WorkReport,
    /// How many times the handler declared a computation finished (one
    /// handler can complete several concurrent queries).
    finish: usize,
    /// Protocol events noted by the handler; buffered only when a tracer
    /// is attached.
    notes: Vec<ProtoEvent>,
    tracing: bool,
}

impl DesCtx {
    fn new(node: usize, now: SimTime, tracing: bool) -> Self {
        DesCtx {
            node,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            work: WorkReport::default(),
            finish: 0,
            notes: Vec::new(),
            tracing,
        }
    }
}

impl Context for DesCtx {
    fn node_id(&self) -> usize {
        self.node
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, to: usize, bytes: u64, msg: Vec<u8>) {
        self.outbox.push((to, bytes, msg));
    }
    fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.timers.push((delay, tag));
    }
    fn report_work(&mut self, work: WorkReport) {
        self.work.dominance_tests += work.dominance_tests;
        self.work.points_scanned += work.points_scanned;
        if let Some(d) = work.measured {
            self.work.measured = Some(self.work.measured.unwrap_or_default() + d);
        }
    }
    fn finish(&mut self) {
        self.finish += 1;
    }
    fn note(&mut self, ev: ProtoEvent) {
        if self.tracing {
            self.notes.push(ev);
        }
    }
}

/// Mutable per-run simulator state, threaded through
/// [`Sim::absorb_ctx`].
struct RunState {
    stats: SimStats,
    breakdown: Option<SimBreakdown>,
    busy_until: Vec<SimTime>,
    /// Per directed link: when the link becomes free again. Transfers on
    /// one link serialize (and are therefore FIFO).
    link_free: HashMap<(usize, usize), SimTime>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    finishes_seen: usize,
    finished: Option<SimTime>,
    /// Next service-span id (one per handler invocation, in execution
    /// order; only meaningful to tracers).
    next_span: u64,
}

impl<B: Behavior> Sim<B> {
    /// Creates a simulator over `nodes` with the given link and cost
    /// models.
    pub fn new(nodes: Vec<B>, link: LinkModel, cost: CostModel) -> Self {
        Sim {
            nodes,
            link,
            link_overrides: HashMap::new(),
            cost,
            drop_hook: None,
            tamper_hook: None,
            trace_hook: None,
            finish_hook: None,
            tracer: None,
            fail_at: HashMap::new(),
            breakdown: false,
            max_events: 100_000_000,
        }
    }

    /// Attaches a structured-event [`Tracer`]; it observes every service
    /// span, message movement, timer, finish, and protocol note. Sim-time
    /// only — attaching a tracer cannot change simulation results.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Overrides the transfer model of the directed link `from → to`;
    /// every other link keeps the global model. Used for perturbation
    /// experiments (bump one link's latency) and for applying what-if
    /// interventions from the critical-path analyzer for real.
    pub fn with_link_override(mut self, from: usize, to: usize, link: LinkModel) -> Self {
        self.link_overrides.insert((from, to), link);
        self
    }

    /// Enables per-node compute and per-link byte breakdowns in the
    /// outcome (small constant overhead per event).
    pub fn with_breakdown(mut self) -> Self {
        self.breakdown = true;
        self
    }

    /// Installs a delivery observer invoked (in delivery order) for every
    /// message that reaches a node.
    pub fn with_trace_hook(
        mut self,
        hook: impl FnMut(SimTime, usize, usize, &[u8]) + 'static,
    ) -> Self {
        self.trace_hook = Some(Box::new(hook));
        self
    }

    /// Installs a finish observer invoked as `(node, sim_time)` once per
    /// [`Context::finish`] call, in execution order. Observation only:
    /// it cannot change simulation results.
    pub fn with_finish_hook(mut self, hook: impl FnMut(usize, SimTime) + 'static) -> Self {
        self.finish_hook = Some(Box::new(hook));
        self
    }

    /// Crashes `node` at simulated time `at`: from then on it neither
    /// receives nor sends messages and its timers are cancelled. Models
    /// the peer failures the paper defers to future work.
    pub fn with_node_failure(mut self, node: usize, at: SimTime) -> Self {
        self.fail_at.insert(node, at);
        self
    }

    /// Installs a failure-injection hook; it sees every message just before
    /// delivery and returns `true` to drop it.
    pub fn with_drop_hook(
        mut self,
        hook: impl FnMut(usize, usize, &[u8]) -> bool + 'static,
    ) -> Self {
        self.drop_hook = Some(Box::new(hook));
        self
    }

    /// Installs a corruption-injection hook; it sees every surviving
    /// message just before delivery and may return a replacement payload.
    /// Timing and declared wire bytes are unchanged (they were fixed at
    /// send time), so the tamper is invisible to every performance metric
    /// — only a correctness audit can notice it.
    pub fn with_tamper_hook(
        mut self,
        hook: impl FnMut(usize, usize, &[u8]) -> Option<Vec<u8>> + 'static,
    ) -> Self {
        self.tamper_hook = Some(Box::new(hook));
        self
    }

    /// Caps the number of delivered events (default 10⁸).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Runs the simulation: `on_start` fires on `start` at t = 0, then
    /// events are delivered until the queue drains, `finish` is called, or
    /// the event cap trips.
    pub fn run(self, start: usize) -> SimOutcome<B> {
        self.run_multi(&[start], 1)
    }

    /// Runs with several start nodes (`on_start` fires on each at t = 0)
    /// and stops once [`Context::finish`] has been called
    /// `required_finishes` times — the makespan of a batch of concurrent
    /// computations. `finished_at` reports the last of those finishes.
    ///
    /// # Panics
    ///
    /// Panics if `starts` is empty, contains duplicates or out-of-range
    /// nodes, or if `required_finishes == 0`.
    pub fn run_multi(mut self, starts: &[usize], required_finishes: usize) -> SimOutcome<B> {
        skypeer_obs::scope!("des::run");
        assert!(!starts.is_empty(), "need at least one start node");
        assert!(required_finishes >= 1, "need at least one required finish");
        for (i, &s) in starts.iter().enumerate() {
            assert!(s < self.nodes.len(), "start node {s} out of range");
            assert!(!starts[..i].contains(&s), "duplicate start node {s}");
        }
        let mut rs = RunState {
            stats: SimStats::default(),
            breakdown: self.breakdown.then(|| SimBreakdown {
                compute_ns: vec![0; self.nodes.len()],
                handled: vec![0; self.nodes.len()],
                link_bytes: HashMap::new(),
            }),
            busy_until: vec![0; self.nodes.len()],
            link_free: HashMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            finishes_seen: 0,
            finished: None,
            next_span: 0,
        };
        let tracing = self.tracer.is_some();

        // Start-of-run hooks on the initiators.
        for &start in starts {
            let mut ctx = DesCtx::new(start, rs.busy_until[start], tracing);
            self.nodes[start].on_start(&mut ctx);
            self.absorb_ctx(ctx, start, SpanCause::Start, 0, &mut rs);
        }

        let mut delivered = 0u64;
        while let Some(Reverse(ev)) = rs.heap.pop() {
            if rs.finishes_seen >= required_finishes {
                break;
            }
            if delivered >= self.max_events {
                panic!("DES event cap exceeded: protocol is not terminating");
            }
            delivered += 1;
            let node_dead = |id: usize, t: SimTime, fail: &HashMap<usize, SimTime>| {
                fail.get(&id).is_some_and(|&at| t >= at)
            };
            let (from, msg_or_timer, cause) = match ev.payload {
                Payload::Message { from, msg } => {
                    let dead_from = node_dead(from, ev.time, &self.fail_at);
                    if dead_from || node_dead(ev.to, ev.time, &self.fail_at) {
                        rs.stats.dropped += 1;
                        if let Some(tr) = &self.tracer {
                            tr.record(TraceEvent::Drop {
                                msg_seq: ev.seq,
                                at: ev.time,
                                from,
                                to: ev.to,
                                reason: if dead_from {
                                    DropReason::DeadSender
                                } else {
                                    DropReason::DeadReceiver
                                },
                            });
                        }
                        continue;
                    }
                    if let Some(hook) = &mut self.drop_hook {
                        if hook(from, ev.to, &msg) {
                            rs.stats.dropped += 1;
                            if let Some(tr) = &self.tracer {
                                tr.record(TraceEvent::Drop {
                                    msg_seq: ev.seq,
                                    at: ev.time,
                                    from,
                                    to: ev.to,
                                    reason: DropReason::Injected,
                                });
                            }
                            continue;
                        }
                    }
                    let msg = match &mut self.tamper_hook {
                        Some(hook) => hook(from, ev.to, &msg).unwrap_or(msg),
                        None => msg,
                    };
                    rs.stats.messages += 1;
                    rs.stats.rounds = rs.stats.rounds.max(ev.depth);
                    if let Some(b) = &mut rs.breakdown {
                        b.handled[ev.to] += 1;
                    }
                    if let Some(hook) = &mut self.trace_hook {
                        hook(ev.time, from, ev.to, &msg);
                    }
                    if let Some(tr) = &self.tracer {
                        tr.record(TraceEvent::Deliver {
                            msg_seq: ev.seq,
                            at: ev.time,
                            from,
                            to: ev.to,
                        });
                    }
                    (from, Some(msg), SpanCause::Msg(ev.seq))
                }
                Payload::Timer { tag } => {
                    if node_dead(ev.to, ev.time, &self.fail_at) {
                        continue;
                    }
                    if let Some(tr) = &self.tracer {
                        tr.record(TraceEvent::TimerFire {
                            timer_seq: ev.seq,
                            at: ev.time,
                            node: ev.to,
                            tag,
                        });
                    }
                    (tag as usize, None, SpanCause::Timer(ev.seq))
                }
            };
            // The node is sequential: processing starts when it is free.
            let begin = ev.time.max(rs.busy_until[ev.to]);
            let mut ctx = DesCtx::new(ev.to, begin, tracing);
            {
                skypeer_obs::scope!("des::dispatch");
                match msg_or_timer {
                    Some(msg) => self.nodes[ev.to].on_message(from, msg, &mut ctx),
                    None => self.nodes[ev.to].on_timer(from as u64, &mut ctx),
                }
            }
            self.absorb_ctx(ctx, ev.to, cause, ev.depth, &mut rs);
        }
        rs.stats.finished_at =
            (rs.finishes_seen >= required_finishes).then_some(rs.finished.unwrap_or(0));
        SimOutcome { nodes: self.nodes, stats: rs.stats, breakdown: rs.breakdown }
    }

    /// Applies a handler's effects: service time, outgoing messages (with
    /// per-link transfer queuing), timers, and the finish flag; emits the
    /// span's trace events when a tracer is attached. `depth` is the
    /// causal message depth of the event that caused this handler
    /// invocation (0 for start-of-run).
    fn absorb_ctx(
        &mut self,
        ctx: DesCtx,
        node: usize,
        cause: SpanCause,
        depth: u64,
        rs: &mut RunState,
    ) {
        skypeer_obs::scope!("des::absorb");
        let service = self.cost.service_ns(&ctx.work);
        rs.stats.compute_ns_total += service;
        if let Some(b) = rs.breakdown.as_mut() {
            b.compute_ns[node] += service;
        }
        let begin = ctx.now;
        let end = begin + service;
        rs.busy_until[node] = end;
        rs.stats.last_event_at = rs.stats.last_event_at.max(end);
        if ctx.finish > 0 {
            rs.finishes_seen += ctx.finish;
            rs.finished = Some(rs.finished.map_or(end, |f| f.max(end)));
            if let Some(hook) = &mut self.finish_hook {
                for _ in 0..ctx.finish {
                    hook(node, end);
                }
            }
        }
        let span = rs.next_span;
        rs.next_span += 1;
        if let Some(tr) = &self.tracer {
            tr.record(TraceEvent::Service {
                span,
                node,
                begin,
                end,
                cause,
                dominance_tests: ctx.work.dominance_tests,
                points_scanned: ctx.work.points_scanned,
                finished: ctx.finish > 0,
            });
            for ev in &ctx.notes {
                tr.record(TraceEvent::Proto { span, node, at: begin, event: *ev });
            }
        }
        for (to, bytes, msg) in ctx.outbox {
            rs.stats.bytes += bytes;
            if let Some(b) = rs.breakdown.as_mut() {
                *b.link_bytes.entry((node, to)).or_insert(0) += bytes;
            }
            let free = rs.link_free.entry((node, to)).or_insert(0);
            let xfer_start = end.max(*free);
            let model = self.link_overrides.get(&(node, to)).unwrap_or(&self.link);
            let arrive = xfer_start + model.delay(bytes);
            *free = arrive;
            if let Some(tr) = &self.tracer {
                tr.record(TraceEvent::Send {
                    msg_seq: rs.seq,
                    span,
                    from: node,
                    to,
                    bytes,
                    queued_at: end,
                    sent_at: xfer_start,
                    arrive_at: arrive,
                });
            }
            rs.heap.push(Reverse(Event {
                time: arrive,
                seq: rs.seq,
                to,
                // Zero-byte self-messages model deferred local compute,
                // not a network round trip: they inherit the depth.
                depth: if bytes > 0 { depth + 1 } else { depth },
                payload: Payload::Message { from: node, msg },
            }));
            rs.seq += 1;
        }
        for (delay, tag) in ctx.timers {
            if let Some(tr) = &self.tracer {
                tr.record(TraceEvent::TimerSet {
                    timer_seq: rs.seq,
                    span,
                    node,
                    fire_at: end + delay,
                    tag,
                });
            }
            rs.heap.push(Reverse(Event {
                time: end + delay,
                seq: rs.seq,
                to: node,
                depth,
                payload: Payload::Timer { tag },
            }));
            rs.seq += 1;
        }
        if let Some(tr) = &self.tracer {
            for _ in 0..ctx.finish {
                tr.record(TraceEvent::Finish { span, node, at: end });
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    /// A relay ring: node i forwards a counter to (i+1) % n until it
    /// reaches `hops`, then finishes.
    struct Ring {
        n: usize,
        hops: u64,
        seen: u64,
    }

    impl Behavior for Ring {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.send((ctx.node_id() + 1) % self.n, 100, vec![0]);
        }
        fn on_message(&mut self, _from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
            self.seen += 1;
            let hop = msg[0] as u64 + 1;
            ctx.report_work(WorkReport { dominance_tests: 10, points_scanned: 1, measured: None });
            if hop >= self.hops {
                ctx.finish();
            } else {
                ctx.send((ctx.node_id() + 1) % self.n, 100, vec![hop as u8]);
            }
        }
    }

    fn ring(n: usize, hops: u64) -> Vec<Ring> {
        (0..n).map(|_| Ring { n, hops, seen: 0 }).collect()
    }

    #[test]
    fn message_count_and_completion() {
        let sim = Sim::new(ring(4, 6), LinkModel::zero_delay(), CostModel::default());
        let out = sim.run(0);
        assert_eq!(out.stats.messages, 6);
        assert!(out.stats.finished_at.is_some());
        assert_eq!(out.stats.bytes, 600);
        assert_eq!(out.stats.rounds, 6, "each ring hop is one sequential round");
        let seen: u64 = out.nodes.iter().map(|n| n.seen).sum();
        assert_eq!(seen, 6);
    }

    #[test]
    fn transfer_delay_accumulates_per_hop() {
        let link = LinkModel { latency_ns: 0, ns_per_byte: 10 };
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 0, per_point_ns: 0 };
        let out = Sim::new(ring(3, 3), link, cost).run(0);
        // 3 hops × 100 bytes × 10 ns/byte = 3000 ns of pure transfer.
        assert_eq!(out.stats.finished_at, Some(3000));
    }

    #[test]
    fn compute_time_accumulates_per_handler() {
        let cost = CostModel::Analytic { base_ns: 1000, per_test_ns: 1, per_point_ns: 0 };
        let out = Sim::new(ring(3, 4), LinkModel::zero_delay(), cost).run(0);
        // on_start costs the base 1000 ns; then 4 handler invocations of
        // 1000 + 10 tests = 1010 ns each.
        assert_eq!(out.stats.compute_ns_total, 1000 + 4 * 1010);
        assert_eq!(out.stats.finished_at, Some(1000 + 4 * 1010));
    }

    #[test]
    fn deterministic_runs() {
        let a = Sim::new(ring(5, 20), LinkModel::paper_4kbps(), CostModel::default()).run(2);
        let b = Sim::new(ring(5, 20), LinkModel::paper_4kbps(), CostModel::default()).run(2);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn finish_hook_sees_every_finish_with_its_time() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let finishes: Rc<RefCell<Vec<(usize, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&finishes);
        let link = LinkModel { latency_ns: 0, ns_per_byte: 10 };
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 0, per_point_ns: 0 };
        let out = Sim::new(ring(3, 3), link, cost)
            .with_finish_hook(move |node, at| sink.borrow_mut().push((node, at)))
            .run(0);
        // One finish, at the node 3 hops around the ring, at the same time
        // the stats report.
        assert_eq!(*finishes.borrow(), vec![(0, 3000)]);
        assert_eq!(out.stats.finished_at, Some(3000));
    }

    #[test]
    fn drop_hook_loses_messages() {
        let sim = Sim::new(ring(4, 8), LinkModel::zero_delay(), CostModel::default())
            .with_drop_hook(|_, to, _| to == 2); // node 2 never hears anything
        let out = sim.run(0);
        assert!(out.stats.finished_at.is_none(), "the ring is broken, no completion");
        assert_eq!(out.stats.dropped, 1);
        assert_eq!(out.stats.messages, 1, "only the 0→1 hop is delivered");
    }

    #[test]
    fn tamper_hook_rewrites_payload_without_touching_metrics() {
        let clean = Sim::new(ring(4, 6), LinkModel::paper_4kbps(), CostModel::default()).run(0);
        // Rewind the hop counter once (on the second delivery, where it is
        // 1): the ring silently repeats a hop and needs one extra message
        // to reach `hops` — delivered, not dropped.
        let mut tampered = false;
        let out = Sim::new(ring(4, 6), LinkModel::paper_4kbps(), CostModel::default())
            .with_tamper_hook(move |_, _, msg| {
                if tampered || msg[0] != 1 {
                    return None;
                }
                tampered = true;
                Some(vec![0])
            })
            .run(0);
        assert!(out.stats.finished_at.is_some());
        assert_eq!(out.stats.messages, clean.stats.messages + 1);
        assert_eq!(out.stats.dropped, 0, "tampering is not dropping");
    }

    #[test]
    fn tamper_hook_returning_none_changes_nothing() {
        let clean = Sim::new(ring(5, 20), LinkModel::paper_4kbps(), CostModel::default()).run(2);
        let hooked = Sim::new(ring(5, 20), LinkModel::paper_4kbps(), CostModel::default())
            .with_tamper_hook(|_, _, _| None)
            .run(2);
        assert_eq!(clean.stats, hooked.stats);
    }

    #[test]
    fn perturb_spec_parses_and_pins_error_text() {
        let base = LinkModel { latency_ns: 7, ns_per_byte: 11 };
        assert_eq!(
            parse_perturb_spec("1:2:500", base),
            Ok((1, 2, LinkModel { latency_ns: 500, ns_per_byte: 11 }))
        );
        assert_eq!(
            parse_perturb_spec("0:3:500:9", base),
            Ok((0, 3, LinkModel { latency_ns: 500, ns_per_byte: 9 }))
        );
        // Pinned error text: front ends surface these strings verbatim.
        assert_eq!(
            parse_perturb_spec("1:2", base).unwrap_err(),
            "bad --perturb-link '1:2' (expected FROM:TO:LATENCY_NS[:NS_PER_BYTE])"
        );
        assert_eq!(
            parse_perturb_spec("0:zap:5", base).unwrap_err(),
            "bad TO 'zap' in --perturb-link"
        );
        assert_eq!(
            parse_perturb_spec("0:1:x", base).unwrap_err(),
            "bad LATENCY_NS 'x' in --perturb-link"
        );
        assert_eq!(
            parse_perturb_spec("0:1:5:y", base).unwrap_err(),
            "bad NS_PER_BYTE 'y' in --perturb-link"
        );
    }

    /// Two messages arriving while a node is busy are processed back to
    /// back in arrival order.
    struct Sink {
        got: Vec<(usize, SimTime)>,
    }
    struct Source;
    enum Node {
        Src(Source),
        Snk(Sink),
    }
    impl Behavior for Node {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            if let Node::Src(_) = self {
                ctx.send(1, 0, vec![1]);
                ctx.send(1, 0, vec![2]);
            }
        }
        fn on_message(&mut self, from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
            if let Node::Snk(s) = self {
                s.got.push((msg[0] as usize, ctx.now()));
                ctx.report_work(WorkReport {
                    dominance_tests: 0,
                    points_scanned: 100,
                    measured: None,
                });
                let _ = from;
            }
        }
    }

    #[test]
    fn busy_node_serializes_processing() {
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 0, per_point_ns: 10 };
        let nodes = vec![Node::Src(Source), Node::Snk(Sink { got: Vec::new() })];
        let out = Sim::new(nodes, LinkModel::zero_delay(), cost).run(0);
        let Node::Snk(sink) = &out.nodes[1] else { panic!() };
        assert_eq!(sink.got.len(), 2);
        // First message starts at t=0, takes 1000 ns; second starts at 1000.
        assert_eq!(sink.got[0], (1, 0));
        assert_eq!(sink.got[1], (2, 1000));
    }

    #[test]
    fn timers_fire_at_the_right_simulated_time() {
        struct Waiter {
            fired: Vec<(u64, SimTime)>,
        }
        impl Behavior for Waiter {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.set_timer(5_000, 7);
                ctx.set_timer(1_000, 3);
            }
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, _c: &mut dyn Context) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context) {
                self.fired.push((tag, ctx.now()));
                if self.fired.len() == 2 {
                    ctx.finish();
                }
            }
        }
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 0, per_point_ns: 0 };
        let out =
            Sim::new(vec![Waiter { fired: Vec::new() }], LinkModel::zero_delay(), cost).run(0);
        let w = &out.nodes[0];
        assert_eq!(w.fired, vec![(3, 1_000), (7, 5_000)], "timers fire in deadline order");
        assert_eq!(out.stats.messages, 0, "timers are not messages");
        assert_eq!(out.stats.bytes, 0);
        assert_eq!(out.stats.rounds, 0, "timers are not rounds");
    }

    #[test]
    fn failed_node_goes_silent() {
        // A ring with node 2 crashed at t = 0: the token never returns.
        let sim = Sim::new(ring(4, 8), LinkModel::zero_delay(), CostModel::default())
            .with_node_failure(2, 0);
        let out = sim.run(0);
        assert!(out.stats.finished_at.is_none());
        assert!(out.stats.dropped >= 1, "the message into the dead node is dropped");
        assert_eq!(out.stats.messages, 1, "only hop 0→1 is delivered; 1→2 is dropped");
    }

    #[test]
    fn failure_time_is_respected() {
        // Node 2 fails only after t = 10ms; a fast ring completes first.
        let cost = CostModel::Analytic { base_ns: 10, per_test_ns: 0, per_point_ns: 0 };
        let out = Sim::new(ring(4, 8), LinkModel::zero_delay(), cost)
            .with_node_failure(2, 10_000_000)
            .run(0);
        assert!(out.stats.finished_at.is_some(), "failure scheduled after completion");
    }

    #[test]
    fn dead_nodes_timers_never_fire() {
        struct T {
            fired: bool,
        }
        impl Behavior for T {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.set_timer(1_000, 1);
                ctx.set_timer(10_000, 2);
            }
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, _c: &mut dyn Context) {}
            fn on_timer(&mut self, tag: u64, _c: &mut dyn Context) {
                if tag == 2 {
                    self.fired = true;
                }
            }
        }
        let out = Sim::new(vec![T { fired: false }], LinkModel::zero_delay(), CostModel::default())
            .with_node_failure(0, 5_000)
            .run(0);
        assert!(!out.nodes[0].fired, "timer past the crash must not fire");
    }

    #[test]
    fn links_are_fifo_even_with_size_inversion() {
        // Node 0 sends a huge message then a tiny one to node 1; despite the
        // tiny one having a far smaller transfer delay, delivery order must
        // match send order.
        struct Src;
        struct Dst {
            got: Vec<u8>,
        }
        enum N {
            Src(Src),
            Dst(Dst),
        }
        impl Behavior for N {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                if let N::Src(_) = self {
                    ctx.send(1, 1_000_000, vec![1]);
                    ctx.send(1, 1, vec![2]);
                }
            }
            fn on_message(&mut self, _f: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
                if let N::Dst(d) = self {
                    d.got.push(msg[0]);
                    if d.got.len() == 2 {
                        ctx.finish();
                    }
                }
            }
        }
        let link = LinkModel { latency_ns: 0, ns_per_byte: 100 };
        let out = Sim::new(
            vec![N::Src(Src), N::Dst(Dst { got: Vec::new() })],
            link,
            CostModel::default(),
        )
        .run(0);
        let N::Dst(d) = &out.nodes[1] else { panic!() };
        assert_eq!(d.got, vec![1, 2], "FIFO violated on a single link");
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn runaway_protocol_trips_cap() {
        struct Forever;
        impl Behavior for Forever {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.send(0, 1, vec![]);
            }
            fn on_message(&mut self, _f: usize, _m: Vec<u8>, ctx: &mut dyn Context) {
                ctx.send(0, 1, vec![]);
            }
        }
        let _ = Sim::new(vec![Forever], LinkModel::zero_delay(), CostModel::default())
            .with_max_events(1000)
            .run(0);
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;

    struct Fan {
        n: usize,
    }
    impl Behavior for Fan {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            for to in 1..self.n {
                ctx.send(to, 100 * to as u64, vec![]);
            }
        }
        fn on_message(&mut self, _f: usize, _m: Vec<u8>, ctx: &mut dyn Context) {
            ctx.report_work(WorkReport {
                dominance_tests: 10 * ctx.node_id() as u64,
                points_scanned: 0,
                measured: None,
            });
            if ctx.node_id() == 3 {
                ctx.finish();
            }
        }
    }

    #[test]
    fn breakdown_tracks_nodes_and_links() {
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 1, per_point_ns: 0 };
        let nodes: Vec<Fan> = (0..4).map(|_| Fan { n: 4 }).collect();
        let out = Sim::new(nodes, LinkModel::zero_delay(), cost).with_breakdown().run(0);
        let b = out.breakdown.expect("breakdown enabled");
        assert_eq!(b.compute_ns[1], 10);
        assert_eq!(b.compute_ns[2], 20);
        assert_eq!(b.compute_ns[3], 30);
        assert_eq!(b.hottest_node(), Some((3, 30)));
        assert_eq!(b.link_bytes[&(0, 2)], 200);
        assert_eq!(b.hottest_link(), Some(((0, 3), 300)));
        assert_eq!(b.handled[1] + b.handled[2] + b.handled[3], out.stats.messages);
    }

    #[test]
    fn breakdown_off_by_default() {
        let nodes: Vec<Fan> = (0..4).map(|_| Fan { n: 4 }).collect();
        let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default()).run(0);
        assert!(out.breakdown.is_none());
    }

    #[test]
    fn hottest_node_breaks_ties_by_smallest_id() {
        let b = SimBreakdown {
            compute_ns: vec![5, 9, 9, 9, 2],
            handled: vec![0; 5],
            link_bytes: HashMap::new(),
        };
        assert_eq!(b.hottest_node(), Some((1, 9)));
    }

    #[test]
    fn hottest_link_breaks_ties_lexicographically() {
        // All-equal weights: the answer must not depend on HashMap
        // iteration order.
        let mut link_bytes = HashMap::new();
        for l in [(3, 1), (0, 2), (2, 0), (0, 1)] {
            link_bytes.insert(l, 700u64);
        }
        let b = SimBreakdown { compute_ns: vec![], handled: vec![], link_bytes };
        assert_eq!(b.hottest_link(), Some(((0, 1), 700)));
    }
}

#[cfg(test)]
mod tracer_tests {
    use super::*;
    use skypeer_obs::{critical_path, MemTracer};

    struct Relay {
        n: usize,
        hops: u64,
    }
    impl Behavior for Relay {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.note(ProtoEvent::Phase { qid: 1, phase: skypeer_obs::QueryPhase::Started });
            ctx.send((ctx.node_id() + 1) % self.n, 100, vec![0]);
        }
        fn on_message(&mut self, _from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
            let hop = msg[0] as u64 + 1;
            ctx.report_work(WorkReport { dominance_tests: 5, points_scanned: 2, measured: None });
            if hop >= self.hops {
                ctx.finish();
            } else {
                ctx.send((ctx.node_id() + 1) % self.n, 100, vec![hop as u8]);
            }
        }
    }

    fn relay(n: usize, hops: u64) -> Vec<Relay> {
        (0..n).map(|_| Relay { n, hops }).collect()
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let plain = Sim::new(relay(4, 7), LinkModel::paper_4kbps(), CostModel::default()).run(0);
        let tracer = Arc::new(MemTracer::new());
        let traced = Sim::new(relay(4, 7), LinkModel::paper_4kbps(), CostModel::default())
            .with_tracer(tracer.clone())
            .run(0);
        assert_eq!(plain.stats, traced.stats);
        assert!(!tracer.is_empty());
    }

    #[test]
    fn trace_is_consistent_with_stats_and_critical_path() {
        let tracer = Arc::new(MemTracer::new());
        let cost = CostModel::Analytic { base_ns: 100, per_test_ns: 1, per_point_ns: 1 };
        let out = Sim::new(relay(3, 5), LinkModel::paper_4kbps(), cost)
            .with_tracer(tracer.clone())
            .run(0);
        let events = tracer.take();
        let delivers =
            events.iter().filter(|e| matches!(e, TraceEvent::Deliver { .. })).count() as u64;
        assert_eq!(delivers, out.stats.messages);
        let sent_bytes: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(sent_bytes, out.stats.bytes);
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Proto { event: ProtoEvent::Phase { qid: 1, .. }, .. }
        )));
        let path = critical_path(&events).expect("run finished");
        assert_eq!(Some(path.finish_at), out.stats.finished_at);
        assert_eq!(path.total_ns, out.stats.finished_at.unwrap(), "path reaches back to t=0");
    }

    #[test]
    fn link_override_changes_only_that_link() {
        // Default ring transfer: 100 B × 10 ns/B = 1000 ns per hop.
        let link = LinkModel { latency_ns: 0, ns_per_byte: 10 };
        let cost = CostModel::Analytic { base_ns: 0, per_test_ns: 0, per_point_ns: 0 };
        let base = Sim::new(relay(3, 3), link, cost).run(0);
        assert_eq!(base.stats.finished_at, Some(3000));
        // Bump only link 1→2 by 50µs of latency: exactly one hop pays it.
        let pert = Sim::new(relay(3, 3), link, cost)
            .with_link_override(1, 2, LinkModel { latency_ns: 50_000, ns_per_byte: 10 })
            .run(0);
        assert_eq!(pert.stats.finished_at, Some(53_000));
        // The answer-shaping stats are untouched.
        assert_eq!(pert.stats.messages, base.stats.messages);
        assert_eq!(pert.stats.bytes, base.stats.bytes);
        // Overriding a link the protocol never uses changes nothing.
        let unused = Sim::new(relay(3, 3), link, cost)
            .with_link_override(2, 1, LinkModel { latency_ns: 50_000, ns_per_byte: 10 })
            .run(0);
        assert_eq!(unused.stats.finished_at, Some(3000));
    }

    #[test]
    fn what_if_prediction_is_directionally_correct_when_applied() {
        use skypeer_obs::diff::{rank_interventions, Intervention};
        // Transfers dominate: 100 B × 244µs/B per hop vs ~105 ns of
        // service, so the top-ranked intervention must be a link.
        let link = LinkModel::paper_4kbps();
        let cost = CostModel::Analytic { base_ns: 100, per_test_ns: 1, per_point_ns: 0 };
        let tracer = Arc::new(MemTracer::new());
        let base = Sim::new(relay(3, 4), link, cost).with_tracer(tracer.clone()).run(0);
        let base_ns = base.stats.finished_at.expect("finishes");
        let path = critical_path(&tracer.take()).expect("finish");
        assert_eq!(path.total_ns, base_ns);

        let factor = 0.5;
        let ranked = rank_interventions(&path, factor);
        let top = ranked.first().expect("path has segments");
        let Intervention::LinkSpeed { from, to, .. } = top.intervention else {
            panic!("transfers dominate; expected a link intervention, got {:?}", top.intervention)
        };
        assert!(top.predicted_saving_ns > 0);

        // Apply the top-ranked intervention for real: scale that link's
        // latency and per-byte cost by the same factor.
        let scaled = LinkModel {
            latency_ns: (link.latency_ns as f64 * factor).round() as u64,
            ns_per_byte: (link.ns_per_byte as f64 * factor).round() as u64,
        };
        let sped = Sim::new(relay(3, 4), link, cost).with_link_override(from, to, scaled).run(0);
        let sped_ns = sped.stats.finished_at.expect("still finishes");
        assert!(
            sped_ns < base_ns,
            "speeding up the top-ranked link must reduce sim time: {sped_ns} !< {base_ns}"
        );

        // A no-op scale predicts exactly zero saving for every candidate.
        for w in rank_interventions(&path, 1.0) {
            assert_eq!(w.predicted_saving_ns, 0);
        }
    }

    #[test]
    fn dropped_messages_are_traced_with_reason() {
        let tracer = Arc::new(MemTracer::new());
        let out = Sim::new(relay(4, 8), LinkModel::zero_delay(), CostModel::default())
            .with_drop_hook(|_, to, _| to == 2)
            .with_tracer(tracer.clone())
            .run(0);
        assert_eq!(out.stats.dropped, 1);
        let drops: Vec<_> = tracer
            .take()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Drop { to, reason, .. } => Some((to, reason)),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(2, DropReason::Injected)]);
    }
}
