//! Super-peer topology generation and peer assignment.
//!
//! The paper uses the GT-ITM topology generator to create "well-connected
//! random graphs of `N_sp` peers with a user-specified average connectivity
//! (`DEG_sp`)". GT-ITM's flat random graphs are Waxman graphs: nodes are
//! placed uniformly in the unit square and an edge `(u, v)` is accepted
//! with probability `β · exp(−dist(u,v) / (α · L))`. We implement that
//! model (plus a plain Erdős–Rényi alternative), target the requested
//! average degree by drawing edges until `⌈N_sp · DEG_sp / 2⌉` are in
//! place, and then splice any disconnected components together so the
//! backbone is always connected — matching "well-connected".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which random-graph family to draw the backbone from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologyModel {
    /// Waxman graph (GT-ITM's flat random model). `alpha` controls how
    /// sharply edge probability decays with distance; `beta` scales overall
    /// density (only their combination relative to the target edge count
    /// matters here, since we draw a fixed number of edges).
    Waxman {
        /// Distance-decay parameter, typically in `(0, 1]`.
        alpha: f64,
        /// Density parameter, typically in `(0, 1]`.
        beta: f64,
    },
    /// Uniform random graph with a fixed number of edges, G(n, M).
    ErdosRenyi,
}

/// Specification of a super-peer network.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of super-peers `N_sp`.
    pub n_superpeers: usize,
    /// Target average super-peer degree `DEG_sp` (paper: 4–7).
    pub avg_degree: f64,
    /// Graph family.
    pub model: TopologyModel,
    /// Seed.
    pub seed: u64,
}

impl TopologySpec {
    /// The paper's default backbone: Waxman graph, `DEG_sp = 4`.
    pub fn paper_default(n_superpeers: usize, seed: u64) -> Self {
        TopologySpec {
            n_superpeers,
            avg_degree: 4.0,
            model: TopologyModel::Waxman { alpha: 0.4, beta: 0.6 },
            seed,
        }
    }

    /// Generates the topology.
    ///
    /// # Panics
    ///
    /// Panics if `n_superpeers == 0` or the requested degree is not
    /// achievable (`avg_degree ≥ n_superpeers`).
    pub fn generate(&self) -> Topology {
        let n = self.n_superpeers;
        assert!(n > 0, "need at least one super-peer");
        assert!(
            n == 1 || self.avg_degree < n as f64,
            "average degree {} impossible with {} nodes",
            self.avg_degree,
            n
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let target_edges = ((n as f64 * self.avg_degree) / 2.0).round() as usize;
        let max_edges = n * (n - 1) / 2;
        let target_edges = target_edges.min(max_edges);

        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut present = EdgeSet::new(n);

        match self.model {
            TopologyModel::Waxman { alpha, beta } => {
                let coords: Vec<(f64, f64)> =
                    (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
                let l = f64::sqrt(2.0); // max distance in the unit square
                let mut edges = 0usize;
                let mut attempts = 0usize;
                // Rejection-sample Waxman edges until the target count; the
                // attempt cap guards against pathological parameters, after
                // which we fall back to uniform edges.
                while edges < target_edges && attempts < 200 * max_edges.max(1) {
                    attempts += 1;
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u == v || present.contains(u, v) {
                        continue;
                    }
                    let (ux, uy) = coords[u];
                    let (vx, vy) = coords[v];
                    let dist = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
                    let p = beta * (-dist / (alpha * l)).exp();
                    if rng.gen::<f64>() < p {
                        present.insert(u, v);
                        adj[u].push(v);
                        adj[v].push(u);
                        edges += 1;
                    }
                }
                fill_uniform(&mut rng, &mut adj, &mut present, target_edges, n);
            }
            TopologyModel::ErdosRenyi => {
                fill_uniform(&mut rng, &mut adj, &mut present, target_edges, n);
            }
        }

        let mut topo = Topology { adj };
        topo.connect_components(&mut rng, &mut present);
        topo
    }
}

/// Upper-triangular bitmap of existing edges.
struct EdgeSet {
    n: usize,
    bits: Vec<u64>,
}

impl EdgeSet {
    fn new(n: usize) -> Self {
        EdgeSet { n, bits: vec![0; (n * n).div_ceil(64)] }
    }
    fn key(&self, u: usize, v: usize) -> usize {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        a * self.n + b
    }
    fn contains(&self, u: usize, v: usize) -> bool {
        let k = self.key(u, v);
        self.bits[k / 64] & (1 << (k % 64)) != 0
    }
    fn insert(&mut self, u: usize, v: usize) {
        let k = self.key(u, v);
        self.bits[k / 64] |= 1 << (k % 64);
    }
}

/// Adds uniformly random edges until `target` edges exist in total.
fn fill_uniform(
    rng: &mut StdRng,
    adj: &mut [Vec<usize>],
    present: &mut EdgeSet,
    target: usize,
    n: usize,
) {
    let mut edges: usize = adj.iter().map(|a| a.len()).sum::<usize>() / 2;
    while edges < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || present.contains(u, v) {
            continue;
        }
        present.insert(u, v);
        adj[u].push(v);
        adj[v].push(u);
        edges += 1;
    }
}

/// A generated super-peer backbone: undirected adjacency lists.
///
/// ```
/// use skypeer_netsim::topology::TopologySpec;
/// let topo = TopologySpec::paper_default(20, 42).generate();
/// assert!(topo.is_connected());
/// assert!((topo.avg_degree() - 4.0).abs() < 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from explicit undirected edges (for tests and
    /// hand-crafted examples).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n && u != v, "bad edge ({u},{v}) for n={n}");
            adj[u].push(v);
            adj[v].push(u);
        }
        Topology { adj }
    }

    /// Number of super-peers.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of super-peer `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.adj.len() as f64
        }
    }

    /// BFS hop distances from `src` (`usize::MAX` for unreachable nodes).
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// BFS spanning tree rooted at `root`: `children[v]` lists the tree
    /// children of `v` (deterministic: neighbors are visited in adjacency
    /// order). Unreachable nodes have no parent and no children.
    pub fn bfs_tree(&self, root: usize) -> Vec<Vec<usize>> {
        let mut children = vec![Vec::new(); self.adj.len()];
        let mut seen = vec![false; self.adj.len()];
        let mut q = VecDeque::new();
        seen[root] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    children[u].push(v);
                    q.push_back(v);
                }
            }
        }
        children
    }

    /// Whether every node can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Eccentricity of `src`: max BFS distance to any node.
    pub fn eccentricity(&self, src: usize) -> usize {
        self.bfs_distances(src).into_iter().max().unwrap_or(0)
    }

    /// Assigns `n_peers` peers to super-peers as evenly as possible
    /// (the paper distributes data "evenly among the peers" and peers
    /// among super-peers). Returns `peer → super-peer`.
    pub fn assign_peers(&self, n_peers: usize) -> Vec<usize> {
        (0..n_peers).map(|p| p % self.adj.len()).collect()
    }

    /// Skewed assignment: peer counts per super-peer follow a Zipf
    /// distribution with exponent `s` (0 = even, 1 ≈ classic web skew).
    /// Real super-peer networks are rarely balanced; this knob lets
    /// experiments measure what imbalance does to SKYPEER's load.
    pub fn assign_peers_skewed(&self, n_peers: usize, s: f64, seed: u64) -> Vec<usize> {
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let n_sp = self.adj.len();
        let weights: Vec<f64> = (1..=n_sp).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        // Deterministic shuffled ranking of super-peers, so the heavy rank
        // is not always node 0.
        let mut order: Vec<usize> = (0..n_sp).collect();
        {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        }
        // Largest-remainder apportionment of n_peers over the weights.
        let mut counts: Vec<usize> =
            weights.iter().map(|w| ((w / total) * n_peers as f64).floor() as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        let mut remainders: Vec<(f64, usize)> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| ((w / total) * n_peers as f64 - counts[i] as f64, i))
            .collect();
        remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite remainders"));
        let mut r = 0;
        while assigned < n_peers {
            counts[remainders[r % n_sp].1] += 1;
            assigned += 1;
            r += 1;
        }
        let mut out = Vec::with_capacity(n_peers);
        for (rank, &sp) in order.iter().enumerate() {
            out.extend(std::iter::repeat_n(sp, counts[rank]));
        }
        out
    }

    /// Splices disconnected components together by linking a random node
    /// of each smaller component to a random node of the first component.
    fn connect_components(&mut self, rng: &mut StdRng, present: &mut EdgeSet) {
        let n = self.adj.len();
        let mut comp = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let cid = components.len();
            let mut members = vec![start];
            comp[start] = cid;
            let mut q = VecDeque::from([start]);
            while let Some(u) = q.pop_front() {
                for &v in &self.adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = cid;
                        members.push(v);
                        q.push_back(v);
                    }
                }
            }
            components.push(members);
        }
        for extra in components.iter().skip(1) {
            let u = extra[rng.gen_range(0..extra.len())];
            let v = components[0][rng.gen_range(0..components[0].len())];
            if !present.contains(u, v) {
                present.insert(u, v);
                self.adj[u].push(v);
                self.adj[v].push(u);
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn generated_graph_is_connected_and_near_target_degree() {
        for &n in &[5usize, 20, 100, 400] {
            for &deg in &[4.0f64, 7.0] {
                if deg >= n as f64 {
                    continue;
                }
                for model in
                    [TopologyModel::Waxman { alpha: 0.4, beta: 0.6 }, TopologyModel::ErdosRenyi]
                {
                    let spec = TopologySpec { n_superpeers: n, avg_degree: deg, model, seed: 11 };
                    let t = spec.generate();
                    assert!(t.is_connected(), "n={n} deg={deg} model={model:?}");
                    let got = t.avg_degree();
                    assert!((got - deg).abs() < 1.5, "n={n}: wanted avg degree ≈{deg}, got {got}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TopologySpec::paper_default(50, 3);
        assert_eq!(spec.generate(), spec.generate());
        let other = TopologySpec { seed: 4, ..spec };
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn single_node_topology() {
        let spec = TopologySpec::paper_default(1, 0);
        let t = spec.generate();
        assert_eq!(t.len(), 1);
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn higher_degree_means_shorter_paths() {
        let lo = TopologySpec {
            n_superpeers: 200,
            avg_degree: 4.0,
            model: TopologyModel::ErdosRenyi,
            seed: 5,
        }
        .generate();
        let hi = TopologySpec {
            n_superpeers: 200,
            avg_degree: 7.0,
            model: TopologyModel::ErdosRenyi,
            seed: 5,
        }
        .generate();
        let ecc_lo: usize = (0..20).map(|i| lo.eccentricity(i)).sum();
        let ecc_hi: usize = (0..20).map(|i| hi.eccentricity(i)).sum();
        assert!(
            ecc_hi <= ecc_lo,
            "DEG_sp=7 should not have longer routing paths than DEG_sp=4 ({ecc_hi} vs {ecc_lo})"
        );
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(t.eccentricity(1), 2);
    }

    #[test]
    fn peer_assignment_is_even() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let homes = t.assign_peers(10);
        assert_eq!(homes.len(), 10);
        let counts = [0, 1, 2].map(|sp| homes.iter().filter(|&&h| h == sp).count());
        assert_eq!(counts.iter().max().unwrap() - counts.iter().min().unwrap(), 1);
    }

    #[test]
    fn skewed_assignment_is_complete_and_skewed() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let homes = t.assign_peers_skewed(1000, 1.0, 7);
        assert_eq!(homes.len(), 1000);
        let counts: Vec<usize> =
            (0..5).map(|sp| homes.iter().filter(|&&h| h == sp).count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        let max = *counts.iter().max().expect("counts");
        let min = *counts.iter().min().expect("counts");
        assert!(max > 3 * min, "Zipf(1) over 5 nodes should be clearly skewed: {counts:?}");
        // Exponent 0 degenerates to an even split.
        let even = t.assign_peers_skewed(1000, 0.0, 7);
        let even_counts: Vec<usize> =
            (0..5).map(|sp| even.iter().filter(|&&h| h == sp).count()).collect();
        assert!(even_counts.iter().all(|&c| c == 200), "{even_counts:?}");
    }

    #[test]
    fn skewed_assignment_is_deterministic() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.assign_peers_skewed(100, 0.8, 1), t.assign_peers_skewed(100, 0.8, 1));
        assert_ne!(t.assign_peers_skewed(100, 0.8, 1), t.assign_peers_skewed(100, 0.8, 2));
    }

    #[test]
    fn disconnected_input_gets_spliced() {
        // Force a degenerate spec (0 target edges) — components must still
        // be joined.
        let spec = TopologySpec {
            n_superpeers: 10,
            avg_degree: 0.0,
            model: TopologyModel::ErdosRenyi,
            seed: 9,
        };
        let t = spec.generate();
        assert!(t.is_connected());
        assert!(t.edge_count() >= 9, "a spanning structure needs ≥ n−1 edges");
    }

    #[test]
    fn adjacency_is_symmetric_and_loop_free() {
        let t = TopologySpec::paper_default(80, 2).generate();
        for u in 0..t.len() {
            for &v in t.neighbors(u) {
                assert_ne!(u, v, "self-loop at {u}");
                assert!(t.neighbors(v).contains(&u), "asymmetric edge {u}->{v}");
            }
        }
    }
}
