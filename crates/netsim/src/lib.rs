#![warn(missing_docs)]

//! Network substrate for SKYPEER: super-peer topologies, a deterministic
//! discrete-event simulator (DES), and a live threaded runtime.
//!
//! The paper (Section 6) simulates its P2P network: peers run as multiple
//! instances on one machine, the topology comes from the GT-ITM generator,
//! and each super-peer connection is modelled with a 4 KB/s transfer
//! bandwidth. This crate reproduces that methodology:
//!
//! * [`topology`] — random connected super-peer graphs with a target
//!   average degree (`DEG_sp`), standing in for GT-ITM's flat random
//!   (Waxman) model, plus peer→super-peer assignment;
//! * [`des`] — a deterministic DES in which each node processes messages
//!   sequentially (it is *busy* for the computed service time of each
//!   handler invocation) and each message suffers a per-link transfer
//!   delay proportional to its size;
//! * [`cost`] — the computation cost model translating kernel operation
//!   counts (or measured wall time) into simulated service time;
//! * [`live`] — a thread-per-node runtime over crossbeam channels running
//!   the *same* [`Behavior`] implementations for real, used to check the
//!   protocol against actual concurrency.
//!
//! Protocol logic is written once against the [`Behavior`]/[`Context`]
//! traits and runs unchanged on both runtimes.
//!
//! Both runtimes accept an optional [`obs::Tracer`] and emit structured
//! [`obs::TraceEvent`]s (service spans, message movement, timers,
//! protocol notes); see the `skypeer-obs` crate for the event model,
//! metrics registry, exporters, and critical-path analysis.

pub mod cost;
pub mod des;
pub mod live;
pub mod topology;

/// The observability crate, re-exported so behaviors can name
/// [`obs::ProtoEvent`] & co. without a direct dependency.
pub use skypeer_obs as obs;

pub use cost::CostModel;
pub use des::{Behavior, Context, LinkModel, Sim, SimBreakdown, SimStats, SimTime};
pub use topology::{Topology, TopologyModel, TopologySpec};

#[cfg(test)]
mod proptests;
