//! Network-scale checks of the paper's analytical claims: the
//! observations behind the extended skyline, threshold monotonicity, and
//! the qualitative performance orderings the evaluation section reports.

use proptest::prelude::*;
use skypeer::core::engine::{EngineConfig, QueryMetrics, SkypeerEngine};
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec, Query, WorkloadSpec};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::LinkModel;
use skypeer::netsim::topology::TopologySpec;
use skypeer::skyline::skycube::Skycube;
use skypeer::skyline::{DominanceIndex, PointSet, Subspace};

fn build(n_peers: usize, dim: usize, seed: u64) -> SkypeerEngine {
    let n_superpeers = (n_peers / 4).max(6);
    SkypeerEngine::build(EngineConfig {
        n_peers,
        n_superpeers,
        dataset: DatasetSpec { dim, points_per_peer: 25, kind: DatasetKind::Uniform, seed },
        topology: TopologySpec::paper_default(n_superpeers, seed ^ 1),
        index: DominanceIndex::RTree,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    })
}

/// Observation 4 at network scale: every super-peer store answers the full
/// skycube of its own raw data exactly.
#[test]
fn stores_cover_their_skycubes() {
    let engine = build(24, 4, 3);
    let homes = engine.topology().assign_peers(24);
    let spec = engine.config().dataset;
    for sp in 0..engine.config().n_superpeers {
        let mut raw = PointSet::new(4);
        for (peer, &home) in homes.iter().enumerate() {
            if home == sp {
                raw.extend_from(&spec.generate_peer(peer, home));
            }
        }
        if raw.is_empty() {
            continue;
        }
        let cube = Skycube::compute(&raw);
        let store = engine.store(sp);
        let have: Vec<u64> = (0..store.len()).map(|i| store.points().id(i)).collect();
        for id in cube.union_ids() {
            assert!(have.contains(&id), "store of SP{sp} misses skycube point {id}");
        }
    }
}

/// The qualitative ordering of the paper's evaluation on uniform data:
/// every SKYPEER variant beats naive on volume and total time, and
/// progressive merging beats fixed merging on volume.
#[test]
fn evaluation_orderings_hold_on_uniform_data() {
    let engine = build(60, 6, 9);
    let workload = WorkloadSpec {
        dim: 6,
        k: 3,
        queries: 10,
        n_superpeers: engine.config().n_superpeers,
        seed: 4,
    }
    .generate();
    let metric = |v: Variant| QueryMetrics::from_outcomes(&engine.run_workload(&workload, v));
    let naive = metric(Variant::Naive);
    let ftfm = metric(Variant::Ftfm);
    let ftpm = metric(Variant::Ftpm);
    let rtpm = metric(Variant::Rtpm);

    for (name, m) in [("FTFM", &ftfm), ("FTPM", &ftpm), ("RTPM", &rtpm)] {
        assert!(
            m.avg_volume_bytes < naive.avg_volume_bytes,
            "{name} volume {} should beat naive {}",
            m.avg_volume_bytes,
            naive.avg_volume_bytes
        );
        assert!(
            m.avg_total_time_ns < naive.avg_total_time_ns,
            "{name} total time should beat naive"
        );
    }
    assert!(
        ftpm.avg_volume_bytes <= ftfm.avg_volume_bytes,
        "progressive merging must not ship more than fixed merging"
    );
}

/// Refined thresholds can only tighten pruning: RTFM never ships more
/// bytes than FTFM on the same query.
#[test]
fn refined_threshold_never_increases_volume() {
    let engine = build(40, 5, 21);
    let workload = WorkloadSpec {
        dim: 5,
        k: 2,
        queries: 12,
        n_superpeers: engine.config().n_superpeers,
        seed: 8,
    }
    .generate();
    for q in &workload {
        let ft = engine.run_query(*q, Variant::Ftfm);
        let rt = engine.run_query(*q, Variant::Rtfm);
        assert!(
            rt.volume_bytes <= ft.volume_bytes,
            "query {q:?}: RTFM {} > FTFM {}",
            rt.volume_bytes,
            ft.volume_bytes
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small networks: every variant is exact for random queries.
    /// (Case count is low because each case builds a full network; the
    /// kernel-level property tests in skypeer-skyline run hundreds.)
    #[test]
    fn prop_random_networks_are_exact(
        seed in 0u64..1000,
        dim in 3usize..6,
        k in 1usize..4,
        initiator_pick in 0usize..100,
    ) {
        let k = k.min(dim);
        let engine = build(20, dim, seed);
        let n_sp = engine.config().n_superpeers;
        let q = Query {
            subspace: WorkloadSpec { dim, k, queries: 1, n_superpeers: n_sp, seed }
                .generate()[0].subspace,
            initiator: initiator_pick % n_sp,
        };
        let want = engine.centralized_skyline(q.subspace);
        for variant in [Variant::Ftfm, Variant::Rtpm, Variant::Naive] {
            prop_assert_eq!(&engine.run_query(q, variant).result_ids, &want);
        }
        let _ = Subspace::full(dim);
    }
}
