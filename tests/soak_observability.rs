//! Workload-level observability, end to end: the soak runner's flight
//! recorder must retain exactly the top-K tail queries, every retained
//! query must be replayable through the existing EXPLAIN path with the
//! same simulated latency, and the whole pipeline must be deterministic.

use skypeer_bench::soak::{run_soak, SoakSpec};
use skypeer_core::engine::{EngineConfig, RoutingMode, SkypeerEngine};
use skypeer_core::Variant;
use skypeer_data::{DatasetKind, DatasetSpec, InitiatorMix, KMix, MixedWorkloadSpec, WorkloadSpec};
use skypeer_netsim::cost::CostModel;
use skypeer_netsim::des::LinkModel;
use skypeer_netsim::obs::SloSpec;
use skypeer_netsim::topology::TopologySpec;
use skypeer_skyline::DominanceIndex;

fn engine(seed: u64) -> SkypeerEngine {
    let n_superpeers = 6;
    SkypeerEngine::build(EngineConfig {
        n_peers: 12,
        n_superpeers,
        dataset: DatasetSpec { dim: 4, points_per_peer: 30, kind: DatasetKind::Uniform, seed },
        topology: TopologySpec::paper_default(n_superpeers, seed),
        index: DominanceIndex::Linear,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: RoutingMode::Flood,
    })
}

fn skewed_spec(queries: usize, tail_k: usize) -> SoakSpec {
    SoakSpec {
        variants: vec![Variant::Rtpm],
        workload: MixedWorkloadSpec {
            dim: 4,
            queries,
            n_superpeers: 6,
            seed: 17,
            k_mix: KMix::Zipf { k_min: 1, k_max: 3, exponent: 1.1 },
            initiator_mix: InitiatorMix::Zipf { exponent: 0.9 },
        },
        slo: SloSpec::default(),
        tail_k,
        hdr_precision: 7,
        cache_bytes: None,
        telemetry: None,
        perturb: None,
        audit: None,
        backend: Default::default(),
    }
}

#[test]
fn flight_recorder_retains_exactly_the_top_k_tail() {
    let engine = engine(7);
    let spec = skewed_spec(60, 5);
    let mut latencies = Vec::new();
    let out = run_soak(&engine, &spec, |row| latencies.push(row.latency_ns));
    assert_eq!(latencies.len(), 60);

    let rec = &out.variants[0].recorder;
    assert_eq!(rec.observed(), 60);
    assert_eq!(rec.retained().len(), 5, "capacity is exact, not a high-water mark");
    assert_eq!(rec.evicted(), 55, "everything else gave its trace back");

    let mut sorted = latencies.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let kept: Vec<u64> = rec.retained().iter().map(|r| r.latency_ns).collect();
    assert_eq!(kept, sorted[..5].to_vec(), "retained set is the exact top-K, worst first");
    // The retained traces are real: every one carries the query's events.
    for r in rec.retained() {
        assert!(!r.events.is_empty(), "retained query q{} has no trace", r.seq);
    }
}

#[test]
fn every_retained_tail_query_replays_through_explain() {
    let engine = engine(7);
    let spec = skewed_spec(40, 3);
    let out = run_soak(&engine, &spec, |_| {});
    let rec = &out.variants[0].recorder;
    assert_eq!(rec.retained().len(), 3);
    for r in rec.retained() {
        let q = out.queries[r.seq as usize];
        let report = engine.explain_query(q, Variant::Rtpm);
        assert_eq!(
            report.total_time_ns, r.latency_ns,
            "explain re-run of q{} must reproduce the soaked latency",
            r.seq
        );
        let text = report.render();
        assert!(text.contains("EXPLAIN skyline"), "q{}:\n{text}", r.seq);
        assert!(text.contains("critical path"), "q{}:\n{text}", r.seq);
    }
}

#[test]
fn soak_pipeline_is_deterministic_within_and_across_engines() {
    let spec = skewed_spec(30, 4);
    // Same engine, run twice: advancing internal query ids must not leak
    // into any observable metric.
    let e1 = engine(7);
    let a = run_soak(&e1, &spec, |_| {}).summary_json();
    let b = run_soak(&e1, &spec, |_| {}).summary_json();
    assert_eq!(a, b, "same engine, repeated soak");
    // Fresh engine from the same config: byte-identical again.
    let e2 = engine(7);
    let c = run_soak(&e2, &spec, |_| {}).summary_json();
    assert_eq!(a, c, "fresh engine, same config");
}

#[test]
fn uniform_soak_matches_plain_workload_latencies() {
    // A Fixed+Uniform mix is pinned to WorkloadSpec::generate's stream, so
    // the soak must measure exactly the queries the plain path produces.
    let engine = engine(3);
    let plain = WorkloadSpec { dim: 4, k: 2, queries: 10, n_superpeers: 6, seed: 5 }.generate();
    let spec = SoakSpec {
        variants: vec![Variant::Ftfm],
        workload: MixedWorkloadSpec::uniform(WorkloadSpec {
            dim: 4,
            k: 2,
            queries: 10,
            n_superpeers: 6,
            seed: 5,
        }),
        slo: SloSpec::default(),
        tail_k: 2,
        hdr_precision: 7,
        cache_bytes: None,
        telemetry: None,
        perturb: None,
        audit: None,
        backend: Default::default(),
    };
    let out = run_soak(&engine, &spec, |_| {});
    assert_eq!(out.queries, plain);
    for (i, &q) in plain.iter().enumerate() {
        let direct = engine.run_query(q, Variant::Ftfm);
        // The soak's single-sim path and the full run's real-link leg are
        // the same simulation.
        assert!(out.variants[0].latency_ns.count() == 10, "query {i} missing from the histogram");
        assert!(direct.total_time_ns > 0);
    }
}
