//! Trace determinism: a fixed-seed query on the paper-default network
//! must yield a byte-identical JSONL event log on every run, for both
//! routing modes. The exported log is also pinned against a golden file
//! (self-bootstrapping: the first run writes it, later runs compare).
//!
//! This is the strongest statement of the "tracing does not perturb the
//! simulation" invariant: the trace is a pure function of (config, seed,
//! query, variant), with no wall clocks or iteration-order leaks.

use skypeer::core::engine::{RoutingMode, SkypeerEngine};
use skypeer::core::{EngineConfig, Variant};
use skypeer::data::Query;
use skypeer::obs::{self, MemTracer, Tracer};
use skypeer::skyline::Subspace;
use std::sync::Arc;

/// Runs one traced fixed-seed FTPM query and returns the JSONL event log,
/// after checking the critical path accounts for the full response time.
fn traced_jsonl(routing: RoutingMode) -> String {
    let mut cfg = EngineConfig::paper_default(60, 42);
    cfg.routing = routing;
    let engine = SkypeerEngine::build(cfg);
    let q = Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 0 };
    let tracer = Arc::new(MemTracer::new());
    let out = engine.run_query_traced(q, Variant::Ftpm, Arc::clone(&tracer) as Arc<dyn Tracer>);
    let events = tracer.take();
    assert!(!events.is_empty(), "traced query produced no events");
    let path = obs::critical_path(&events).expect("query finished, critical path exists");
    assert_eq!(path.finish_at, out.total_time_ns, "critical path ends at the finish");
    assert_eq!(path.total_ns, out.total_time_ns, "critical path spans the full response time");
    obs::jsonl(&events)
}

/// Compares against `tests/goldens/<name>`; writes it on first run.
fn check_golden(name: &str, contents: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let path = dir.join(name);
    if path.exists() {
        let want = std::fs::read_to_string(&path).expect("read golden");
        assert_eq!(want, contents, "trace drifted from golden {name}; delete the file to re-bless");
    } else {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
        std::fs::write(&path, contents).expect("write golden");
    }
}

#[test]
fn flood_trace_is_byte_identical_across_runs() {
    let a = traced_jsonl(RoutingMode::Flood);
    let b = traced_jsonl(RoutingMode::Flood);
    assert_eq!(a, b, "two identical flood runs must trace identically");
    check_golden("trace_flood.jsonl", &a);
}

#[test]
fn spanning_tree_trace_is_byte_identical_across_runs() {
    let a = traced_jsonl(RoutingMode::SpanningTree);
    let b = traced_jsonl(RoutingMode::SpanningTree);
    assert_eq!(a, b, "two identical spanning-tree runs must trace identically");
    check_golden("trace_tree.jsonl", &a);
}

#[test]
fn routing_modes_trace_differently() {
    // Sanity that the goldens really pin distinct behaviors: constrained
    // flooding and spanning-tree routing move different message sets.
    let flood = traced_jsonl(RoutingMode::Flood);
    let tree = traced_jsonl(RoutingMode::SpanningTree);
    assert_ne!(flood, tree, "flood and tree routing should differ on this network");
}
