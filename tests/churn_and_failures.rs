//! Peer churn (joins) and failure injection.
//!
//! The paper handles peer joins incrementally (Section 5.3) and leaves
//! failures to future work; these tests pin down both what the
//! implementation guarantees (join-order independence of the store) and
//! what it deliberately does not (loss tolerance).

use skypeer::core::node::{InitQuery, SuperPeerNode};
use skypeer::core::preprocess::SuperPeerStore;
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::{LinkModel, Sim};
use skypeer::netsim::topology::Topology;
use skypeer::skyline::{DominanceIndex, Subspace};
use std::sync::Arc;

fn peer_sets(n: usize, seed: u64) -> Vec<skypeer::skyline::PointSet> {
    let spec = DatasetSpec { dim: 4, points_per_peer: 40, kind: DatasetKind::Uniform, seed };
    (0..n).map(|p| spec.generate_peer(p, 0)).collect()
}

fn store_ids(store: &SuperPeerStore) -> Vec<u64> {
    let mut v: Vec<u64> = (0..store.store.len()).map(|i| store.store.points().id(i)).collect();
    v.sort_unstable();
    v
}

#[test]
fn join_order_does_not_change_the_store() {
    let peers = peer_sets(6, 3);
    let batch = SuperPeerStore::preprocess(&peers, 4, DominanceIndex::Linear);
    // Join one at a time, in two different orders.
    let mut fwd = SuperPeerStore::empty(4);
    for p in &peers {
        fwd.join_peer(p, DominanceIndex::Linear);
    }
    let mut rev = SuperPeerStore::empty(4);
    for p in peers.iter().rev() {
        rev.join_peer(p, DominanceIndex::Linear);
    }
    assert_eq!(store_ids(&batch), store_ids(&fwd));
    assert_eq!(store_ids(&batch), store_ids(&rev));
}

#[test]
fn queries_stay_exact_after_joins() {
    let peers = peer_sets(8, 17);
    let mut store = SuperPeerStore::preprocess(&peers[..4], 4, DominanceIndex::Linear);
    for p in &peers[4..] {
        store.join_peer(p, DominanceIndex::Linear);
    }
    let mut all = skypeer::skyline::PointSet::new(4);
    for p in &peers {
        all.extend_from(p);
    }
    for u in [Subspace::from_dims(&[0, 1]), Subspace::full(4)] {
        let out = store.store.subspace_skyline(
            u,
            skypeer::skyline::Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        let mut got: Vec<u64> = (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            skypeer::skyline::brute::skyline_ids(&all, u, skypeer::skyline::Dominance::Standard)
        );
    }
}

/// Builds protocol nodes over an explicit topology for failure tests.
fn make_nodes(
    topo: &Topology,
    stores: &[Arc<skypeer::skyline::SortedDataset>],
    initiator: usize,
    variant: Variant,
) -> Vec<SuperPeerNode> {
    (0..topo.len())
        .map(|sp| {
            let init = (sp == initiator).then_some(InitQuery::standard(
                1,
                Subspace::from_dims(&[0, 1]),
                variant,
            ));
            SuperPeerNode::new(
                sp,
                topo.neighbors(sp).to_vec(),
                Arc::clone(&stores[sp]),
                DominanceIndex::Linear,
                init,
            )
        })
        .collect()
}

fn line_stores(n: usize) -> Vec<Arc<skypeer::skyline::SortedDataset>> {
    peer_sets(n, 50)
        .iter()
        .map(|p| {
            Arc::new(
                SuperPeerStore::preprocess(std::slice::from_ref(p), 4, DominanceIndex::Linear)
                    .store,
            )
        })
        .collect()
}

#[test]
fn lost_answer_stalls_the_query_as_documented() {
    // SKYPEER assumes reliable links (failures are the paper's future
    // work). Dropping a child's answer must stall the query rather than
    // silently return a wrong result.
    let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
    let stores = line_stores(3);
    let nodes = make_nodes(&topo, &stores, 0, Variant::Ftpm);
    let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default())
        .with_drop_hook(|from, to, _| from == 2 && to == 1) // sever 2 → 1 answers
        .run(0);
    assert!(out.stats.finished_at.is_none(), "query must not complete with a lost subtree");
    assert!(out.stats.dropped > 0);
}

#[test]
fn lost_query_forward_also_stalls() {
    let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
    let stores = line_stores(3);
    let nodes = make_nodes(&topo, &stores, 0, Variant::Rtfm);
    let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default())
        .with_drop_hook(|from, to, _| from == 1 && to == 2)
        .run(0);
    assert!(out.stats.finished_at.is_none());
}

#[test]
fn unaffected_links_still_deliver_exact_results() {
    // Drops on a link that the spanning tree never uses must be harmless.
    let topo = Topology::from_edges(4, &[(0, 1), (0, 2), (0, 3)]); // star
    let stores = line_stores(4);
    let want = {
        let nodes = make_nodes(&topo, &stores, 0, Variant::Ftfm);
        let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default()).run(0);
        let mut ids: Vec<u64> = {
            let r = out
                .nodes
                .into_iter()
                .next()
                .expect("node 0")
                .into_outcome()
                .expect("result")
                .result;
            (0..r.len()).map(|i| r.points().id(i)).collect()
        };
        ids.sort_unstable();
        ids
    };
    let nodes = make_nodes(&topo, &stores, 0, Variant::Ftfm);
    let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default())
        .with_drop_hook(|from, to, _| from == 2 && to == 3) // link not even in the topology
        .run(0);
    assert!(out.stats.finished_at.is_some());
    let mut ids: Vec<u64> = {
        let r =
            out.nodes.into_iter().next().expect("node 0").into_outcome().expect("result").result;
        (0..r.len()).map(|i| r.points().id(i)).collect()
    };
    ids.sort_unstable();
    assert_eq!(ids, want);
}
