//! Tiny-scale regression tests on the *shapes* the paper's figures claim.
//! These run the same experiment code as the `figures` binary at
//! `Scale::tiny()`, asserting the qualitative orderings rather than any
//! absolute numbers.

use skypeer_bench::experiments::{self, Scale};

fn scale() -> Scale {
    // 1/25 of the paper's peers: 160 peers / 8 super-peers at the default
    // configuration — the smallest scale where the merging-strategy
    // differences are structural rather than noise.
    Scale { peer_divisor: 25, queries: 4, seed: 7 }
}

/// Figure 3(a): ext-skyline selectivity grows with dimensionality, and
/// merging at the super-peer always discards something (SEL_sp < SEL_p).
#[test]
fn fig3a_shape() {
    let fig = experiments::fig3a(scale());
    let sel_p: Vec<f64> = fig.rows.iter().map(|(_, v)| v[0]).collect();
    assert!(sel_p.windows(2).all(|w| w[0] <= w[1] + 3.0), "SEL_p not rising: {sel_p:?}");
    for (_, v) in &fig.rows {
        assert!(v[1] < v[0], "SEL_sp must be below SEL_p");
    }
}

/// Figure 3(b): naive is the most expensive computation at every d, and
/// progressive merging beats fixed merging.
#[test]
fn fig3b_shape() {
    let fig = experiments::fig3b(scale());
    // Series order: FTFM, FTPM, RTFM, RTPM, naive.
    for (d, v) in &fig.rows {
        assert!(v[4] > v[0] && v[4] > v[1], "naive must be slowest at d={d}: {v:?}");
        assert!(v[1] <= v[0] * 1.15, "FTPM should not lose badly to FTFM at d={d}");
    }
}

/// Figure 3(c): progressive merging dominates total time at every d.
#[test]
fn fig3c_shape() {
    let fig = experiments::fig3c(scale());
    for (d, v) in &fig.rows {
        assert!(v[1] < v[0], "FTPM total must beat FTFM at d={d}");
        assert!(v[3] < v[2], "RTPM total must beat RTFM at d={d}");
    }
}

/// Figure 3(d): volume grows with query dimensionality and progressive
/// merging always ships less.
#[test]
fn fig3d_shape() {
    let fig = experiments::fig3d(scale());
    // Series: FTFM k=2, FTPM k=2, FTFM k=3, FTPM k=3.
    for (d, v) in &fig.rows {
        assert!(v[1] < v[0], "FTPM k=2 must ship less at d={d}");
        assert!(v[3] < v[2], "FTPM k=3 must ship less at d={d}");
        assert!(v[2] > v[0], "k=3 must outweigh k=2 at d={d}");
    }
}

/// Figure 4(f): more points per peer means more total time, and
/// progressive merging keeps its lead at every size.
#[test]
fn fig4f_shape() {
    let fig = experiments::fig4f(scale());
    for (ppp, v) in &fig.rows {
        assert!(v[1] < v[0], "FTPM must lead FTFM at {ppp} points/peer");
        assert!(v[4] >= v[1], "naive cannot beat FTPM at {ppp} points/peer");
    }
    // The growth trend: 1000 points/peer must cost clearly more than 250
    // for the volume-bound fixed-merging variant (small-sample noise can
    // wiggle individual steps, so only the endpoints are compared).
    let first_total = fig.rows.first().expect("rows").1[0];
    let last_total = fig.rows.last().expect("rows").1[0];
    assert!(
        last_total > first_total * 0.9,
        "total time collapsed with 4x the data: {first_total} -> {last_total}"
    );
}
