//! Concurrent-query batches: many queries in flight through one
//! simulation, sharing node compute and link bandwidth.

use skypeer::core::engine::{EngineConfig, SkypeerEngine};
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec, Query, WorkloadSpec};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::LinkModel;
use skypeer::netsim::topology::TopologySpec;
use skypeer::skyline::{DominanceIndex, Subspace};

fn engine(seed: u64) -> SkypeerEngine {
    let n_superpeers = 8;
    SkypeerEngine::build(EngineConfig {
        n_peers: 24,
        n_superpeers,
        dataset: DatasetSpec { dim: 5, points_per_peer: 40, kind: DatasetKind::Uniform, seed },
        topology: TopologySpec::paper_default(n_superpeers, seed ^ 0xC0),
        index: DominanceIndex::RTree,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    })
}

#[test]
fn concurrent_answers_equal_serial_answers() {
    let engine = engine(1);
    let workload = WorkloadSpec { dim: 5, k: 3, queries: 6, n_superpeers: 8, seed: 5 }.generate();
    let batch: Vec<(Query, Variant)> = workload.iter().map(|q| (*q, Variant::Ftpm)).collect();
    let concurrent = engine.run_concurrent(&batch);
    assert_eq!(concurrent.result_ids.len(), 6);
    for (i, q) in workload.iter().enumerate() {
        let serial = engine.run_query(*q, Variant::Ftpm);
        assert_eq!(concurrent.result_ids[i], serial.result_ids, "query {i} diverged");
    }
}

#[test]
fn mixed_variants_in_one_batch() {
    let engine = engine(2);
    let u1 = Subspace::from_dims(&[0, 2]);
    let u2 = Subspace::from_dims(&[1, 3, 4]);
    let batch = vec![
        (Query { subspace: u1, initiator: 0 }, Variant::Ftfm),
        (Query { subspace: u2, initiator: 3 }, Variant::Rtpm),
        (Query { subspace: u1, initiator: 5 }, Variant::Naive),
    ];
    let out = engine.run_concurrent(&batch);
    assert_eq!(out.result_ids[0], engine.centralized_skyline(u1));
    assert_eq!(out.result_ids[1], engine.centralized_skyline(u2));
    assert_eq!(out.result_ids[2], engine.centralized_skyline(u1));
}

#[test]
fn several_queries_from_one_initiator() {
    let engine = engine(3);
    let batch = vec![
        (Query { subspace: Subspace::from_dims(&[0]), initiator: 2 }, Variant::Ftpm),
        (Query { subspace: Subspace::from_dims(&[1, 2]), initiator: 2 }, Variant::Ftpm),
        (Query { subspace: Subspace::full(5), initiator: 2 }, Variant::Rtfm),
    ];
    let out = engine.run_concurrent(&batch);
    for (i, (q, _)) in batch.iter().enumerate() {
        assert_eq!(out.result_ids[i], engine.centralized_skyline(q.subspace), "query {i}");
    }
}

#[test]
fn contention_makes_batches_slower_than_one_query_but_faster_than_serial_sum() {
    let engine = engine(4);
    let u = Subspace::from_dims(&[0, 1, 2]);
    let queries: Vec<(Query, Variant)> =
        (0..4).map(|i| (Query { subspace: u, initiator: i * 2 }, Variant::Ftpm)).collect();
    let lone = engine.run_query(queries[0].0, Variant::Ftpm);
    let batch = engine.run_concurrent(&queries);
    assert!(
        batch.makespan_ns >= lone.total_time_ns,
        "a loaded network cannot beat an idle one ({} < {})",
        batch.makespan_ns,
        lone.total_time_ns
    );
    let serial_sum: u64 = queries.iter().map(|(q, v)| engine.run_query(*q, *v).total_time_ns).sum();
    assert!(
        batch.makespan_ns < serial_sum,
        "concurrency must beat running the batch back-to-back ({} >= {serial_sum})",
        batch.makespan_ns
    );
}

#[test]
fn batch_of_one_equals_single_query() {
    let engine = engine(5);
    let q = Query { subspace: Subspace::from_dims(&[2, 4]), initiator: 1 };
    let single = engine.run_query(q, Variant::Rtpm);
    let batch = engine.run_concurrent(&[(q, Variant::Rtpm)]);
    assert_eq!(batch.result_ids[0], single.result_ids);
    assert_eq!(batch.makespan_ns, single.total_time_ns);
    assert_eq!(batch.volume_bytes, single.volume_bytes);
}

#[test]
fn live_runtime_handles_a_concurrent_batch() {
    use skypeer::core::node::{InitQuery, SuperPeerNode};
    use skypeer::netsim::live::run_live_multi;
    use std::sync::Arc;
    use std::time::Duration;

    let engine = engine(6);
    let n_sp = engine.config().n_superpeers;
    let stores: Vec<Arc<_>> = (0..n_sp).map(|sp| Arc::new(engine.store(sp).clone())).collect();
    let u1 = Subspace::from_dims(&[0, 1]);
    let u2 = Subspace::from_dims(&[2, 3]);
    let u3 = Subspace::full(5);

    let mut nodes: Vec<SuperPeerNode> = (0..n_sp)
        .map(|sp| {
            SuperPeerNode::new(
                sp,
                engine.topology().neighbors(sp).to_vec(),
                Arc::clone(&stores[sp]),
                engine.config().index,
                None,
            )
        })
        .collect();
    nodes[0].push_init_query(InitQuery::standard(1, u1, Variant::Ftpm));
    nodes[0].push_init_query(InitQuery::standard(2, u2, Variant::Rtfm));
    nodes[4].push_init_query(InitQuery::standard(3, u3, Variant::Naive));

    let out =
        run_live_multi(nodes, &[0, 4], 3, Duration::from_secs(30)).expect("live batch completes");
    let sorted_ids = |qid: u32, node: usize| {
        let a = out.nodes[node].outcome_for(qid).expect("answer present");
        let mut ids: Vec<u64> = (0..a.result.len()).map(|i| a.result.points().id(i)).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(sorted_ids(1, 0), engine.centralized_skyline(u1));
    assert_eq!(sorted_ids(2, 0), engine.centralized_skyline(u2));
    assert_eq!(sorted_ids(3, 4), engine.centralized_skyline(u3));
}
