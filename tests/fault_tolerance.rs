//! The fault-tolerance extension: super-peer crashes, child timeouts, and
//! the completeness flag. This is the paper's declared future work
//! ("we will investigate how churn, in particular peer failure, affects
//! the performance of SKYPEER"), implemented and characterized here.

use skypeer::core::engine::{EngineConfig, SkypeerEngine};
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec, Query};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::LinkModel;
use skypeer::netsim::topology::TopologySpec;
use skypeer::skyline::{DominanceIndex, Subspace};

const TIMEOUT_NS: u64 = 60_000_000_000; // 60 simulated seconds

fn engine(seed: u64) -> SkypeerEngine {
    let n_superpeers = 8;
    SkypeerEngine::build(EngineConfig {
        n_peers: 24,
        n_superpeers,
        dataset: DatasetSpec { dim: 4, points_per_peer: 30, kind: DatasetKind::Uniform, seed },
        topology: TopologySpec::paper_default(n_superpeers, seed ^ 0xBEEF),
        index: DominanceIndex::Linear,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    })
}

#[test]
fn no_failures_means_complete_and_exact() {
    let engine = engine(1);
    let q = Query { subspace: Subspace::from_dims(&[0, 2]), initiator: 0 };
    for variant in Variant::ALL {
        let out = engine.run_query_with_failures(q, variant, &[], TIMEOUT_NS);
        assert!(out.complete, "{variant}");
        assert_eq!(out.result_ids, engine.centralized_skyline(q.subspace), "{variant}");
    }
}

#[test]
fn crashed_superpeer_yields_incomplete_but_terminating_query() {
    let engine = engine(2);
    let q = Query { subspace: Subspace::from_dims(&[1, 3]), initiator: 0 };
    let exact = engine.centralized_skyline(q.subspace);
    // Crash a non-initiator super-peer from the start.
    for victim in 1..engine.config().n_superpeers {
        for variant in [Variant::Ftpm, Variant::Rtfm] {
            let out = engine.run_query_with_failures(q, variant, &[(victim, 0)], TIMEOUT_NS);
            assert!(!out.complete, "victim {victim} {variant}: lost subtree must be reported");
            // The degraded answer is the exact skyline of the surviving
            // stores; at minimum it cannot invent points from nowhere.
            let survivors: Vec<u64> = {
                use skypeer::skyline::{merge::merge_sorted, Dominance, SortedDataset};
                let stores: Vec<&SortedDataset> =
                    (0..engine.config().n_superpeers).map(|sp| engine.store(sp)).collect();
                let mut all_ids: Vec<u64> =
                    stores.iter().flat_map(|s| (0..s.len()).map(|i| s.points().id(i))).collect();
                all_ids.sort_unstable();
                let _ = merge_sorted(
                    &stores,
                    q.subspace,
                    Dominance::Standard,
                    f64::INFINITY,
                    DominanceIndex::Linear,
                );
                all_ids
            };
            for id in &out.result_ids {
                assert!(survivors.contains(id), "invented point {id}");
            }
            let _ = &exact;
        }
    }
}

#[test]
fn mid_query_crash_still_terminates() {
    let engine = engine(3);
    let q = Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 2 };
    // Crash a node 2 simulated seconds in — after it likely received the
    // query but before large transfers complete.
    let out = engine.run_query_with_failures(q, Variant::Ftfm, &[(5, 2_000_000_000)], TIMEOUT_NS);
    assert!(out.total_time_ns > 0);
    // Whether the crash bites depends on the spanning tree; in either case
    // the query terminated and the flag is consistent with exactness.
    if out.complete {
        assert_eq!(out.result_ids, engine.centralized_skyline(q.subspace));
    }
}

#[test]
fn incomplete_answer_is_subset_of_survivor_skyline_union() {
    let engine = engine(4);
    let q = Query { subspace: Subspace::full(4), initiator: 0 };
    let out = engine.run_query_with_failures(q, Variant::Rtpm, &[(3, 0), (6, 0)], TIMEOUT_NS);
    assert!(!out.complete);
    // Every returned point must come from a surviving super-peer's store.
    let mut survivor_ids: Vec<u64> = (0..engine.config().n_superpeers)
        .filter(|&sp| sp != 3 && sp != 6)
        .flat_map(|sp| {
            let s = engine.store(sp);
            (0..s.len()).map(|i| s.points().id(i)).collect::<Vec<_>>()
        })
        .collect();
    survivor_ids.sort_unstable();
    for id in &out.result_ids {
        assert!(survivor_ids.binary_search(id).is_ok(), "point {id} from a dead super-peer");
    }
}

#[test]
fn multiple_failures_every_variant_terminates() {
    let engine = engine(5);
    let q = Query { subspace: Subspace::from_dims(&[1, 2]), initiator: 1 };
    for variant in Variant::ALL {
        let out = engine.run_query_with_failures(
            q,
            variant,
            &[(0, 0), (4, 1_000_000_000), (7, 5_000_000_000)],
            TIMEOUT_NS,
        );
        assert!(!out.result_ids.is_empty() || out.result.is_empty(), "{variant} terminated");
    }
}

#[test]
fn timeout_cost_shows_up_in_response_time() {
    let engine = engine(6);
    let q = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 0 };
    let healthy = engine.run_query_with_failures(q, Variant::Ftpm, &[], TIMEOUT_NS);
    let degraded = engine.run_query_with_failures(q, Variant::Ftpm, &[(2, 0)], TIMEOUT_NS);
    if !degraded.complete {
        assert!(
            degraded.total_time_ns >= TIMEOUT_NS.min(healthy.total_time_ns),
            "abandoning a child costs at least the timeout window: {} vs healthy {}",
            degraded.total_time_ns,
            healthy.total_time_ns
        );
    }
}
