//! End-to-end integration: generate → partition → preprocess → query on
//! the DES and the live runtime → verify exactness against the raw data.

use skypeer::core::engine::{EngineConfig, SkypeerEngine};
use skypeer::core::live::run_query_live;
use skypeer::core::verify::{exact_skyline_ids, global_dataset};
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec, Query, WorkloadSpec};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::LinkModel;
use skypeer::netsim::topology::TopologySpec;
use skypeer::skyline::{DominanceIndex, Subspace};
use std::sync::Arc;
use std::time::Duration;

fn config(kind: DatasetKind, dim: usize, n_peers: usize, seed: u64) -> EngineConfig {
    let n_superpeers = (n_peers / 4).max(6);
    EngineConfig {
        n_peers,
        n_superpeers,
        dataset: DatasetSpec { dim, points_per_peer: 30, kind, seed },
        topology: TopologySpec::paper_default(n_superpeers, seed ^ 0xF00D),
        index: DominanceIndex::RTree,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    }
}

#[test]
fn uniform_network_all_variants_exact() {
    let cfg = config(DatasetKind::Uniform, 5, 32, 11);
    let engine = SkypeerEngine::build(cfg);
    let all = global_dataset(&cfg.dataset, &engine.topology().assign_peers(cfg.n_peers));
    let workload =
        WorkloadSpec { dim: 5, k: 3, queries: 8, n_superpeers: cfg.n_superpeers, seed: 21 }
            .generate();
    for q in &workload {
        let want = exact_skyline_ids(&all, q.subspace, 2000);
        for variant in Variant::ALL {
            let got = engine.run_query(*q, variant);
            assert_eq!(got.result_ids, want, "query {q:?} variant {variant}");
        }
    }
}

#[test]
fn clustered_network_exact_and_rt_wins_on_volume() {
    let cfg = config(DatasetKind::Clustered { centroids_per_superpeer: 1 }, 3, 32, 5);
    let engine = SkypeerEngine::build(cfg);
    let all = global_dataset(&cfg.dataset, &engine.topology().assign_peers(cfg.n_peers));
    // Global skyline queries, as the paper does for its clustered study.
    let q = Query { subspace: Subspace::full(3), initiator: 2 };
    let want = exact_skyline_ids(&all, q.subspace, 2000);
    let ft = engine.run_query(q, Variant::Ftfm);
    let rt = engine.run_query(q, Variant::Rtfm);
    assert_eq!(ft.result_ids, want);
    assert_eq!(rt.result_ids, want);
    // Refined thresholds can only tighten pruning: never more volume.
    assert!(
        rt.volume_bytes <= ft.volume_bytes,
        "RTFM volume {} exceeds FTFM {}",
        rt.volume_bytes,
        ft.volume_bytes
    );
}

#[test]
fn anticorrelated_stress_is_exact() {
    // Anticorrelated data has enormous skylines — the adversarial case for
    // threshold pruning (thresholds stay high, little is pruned).
    let cfg = config(DatasetKind::Anticorrelated, 4, 24, 9);
    let engine = SkypeerEngine::build(cfg);
    let all = global_dataset(&cfg.dataset, &engine.topology().assign_peers(cfg.n_peers));
    for u in [Subspace::from_dims(&[0, 1]), Subspace::full(4)] {
        let want = exact_skyline_ids(&all, u, usize::MAX);
        let q = Query { subspace: u, initiator: 0 };
        for variant in [Variant::Ftpm, Variant::Naive] {
            assert_eq!(engine.run_query(q, variant).result_ids, want, "U {u} {variant}");
        }
    }
}

#[test]
fn des_and_live_agree_for_every_variant() {
    let cfg = config(DatasetKind::Uniform, 4, 24, 33);
    let engine = SkypeerEngine::build(cfg);
    let stores: Vec<Arc<_>> =
        (0..cfg.n_superpeers).map(|sp| Arc::new(engine.store(sp).clone())).collect();
    let q = Query { subspace: Subspace::from_dims(&[0, 2]), initiator: 1 };
    for variant in Variant::ALL {
        let des = engine.run_query(q, variant);
        let live = run_query_live(
            engine.topology(),
            &stores,
            q.subspace,
            q.initiator,
            variant,
            cfg.index,
            Duration::from_secs(30),
        )
        .unwrap_or_else(|| panic!("live {variant} must complete"));
        assert_eq!(des.result_ids, live.result_ids, "variant {variant}");
    }
}

#[test]
fn engine_rebuild_is_deterministic() {
    let cfg = config(DatasetKind::Uniform, 5, 20, 77);
    let a = SkypeerEngine::build(cfg);
    let b = SkypeerEngine::build(cfg);
    assert_eq!(a.preprocess_report(), b.preprocess_report());
    let q = Query { subspace: Subspace::from_dims(&[1, 3]), initiator: 0 };
    let oa = a.run_query(q, Variant::Rtpm);
    let ob = b.run_query(q, Variant::Rtpm);
    assert_eq!(oa.result_ids, ob.result_ids);
    assert_eq!(oa.total_time_ns, ob.total_time_ns);
    assert_eq!(oa.volume_bytes, ob.volume_bytes);
    assert_eq!(oa.messages, ob.messages);
}

#[test]
fn linear_and_rtree_indexes_agree_end_to_end() {
    let mut cfg = config(DatasetKind::Uniform, 5, 24, 13);
    let engine_rtree = SkypeerEngine::build(cfg);
    cfg.index = DominanceIndex::Linear;
    let engine_linear = SkypeerEngine::build(cfg);
    let workload =
        WorkloadSpec { dim: 5, k: 2, queries: 5, n_superpeers: cfg.n_superpeers, seed: 2 }
            .generate();
    for q in &workload {
        assert_eq!(
            engine_rtree.run_query(*q, Variant::Ftpm).result_ids,
            engine_linear.run_query(*q, Variant::Ftpm).result_ids,
            "dominance index changed the answer for {q:?}"
        );
    }
}

#[test]
fn one_dimensional_subspace_returns_minima() {
    let cfg = config(DatasetKind::Uniform, 5, 20, 55);
    let engine = SkypeerEngine::build(cfg);
    let all = global_dataset(&cfg.dataset, &engine.topology().assign_peers(cfg.n_peers));
    for d in 0..5 {
        let u = Subspace::from_dims(&[d]);
        let q = Query { subspace: u, initiator: 0 };
        let got = engine.run_query(q, Variant::Ftfm);
        // The 1-d skyline is every point attaining the global minimum.
        let min = (0..all.len()).map(|i| all.point(i)[d]).fold(f64::INFINITY, f64::min);
        let mut want: Vec<u64> =
            (0..all.len()).filter(|&i| all.point(i)[d] == min).map(|i| all.id(i)).collect();
        want.sort_unstable();
        assert_eq!(got.result_ids, want, "dimension {d}");
    }
}

#[test]
fn spanning_tree_routing_is_exact_and_leaner() {
    let mut cfg = config(DatasetKind::Uniform, 5, 32, 19);
    let flood_engine = SkypeerEngine::build(cfg);
    cfg.routing = skypeer_core::engine::RoutingMode::SpanningTree;
    let tree_engine = SkypeerEngine::build(cfg);
    let workload =
        WorkloadSpec { dim: 5, k: 3, queries: 6, n_superpeers: cfg.n_superpeers, seed: 44 }
            .generate();
    for q in &workload {
        for variant in [Variant::Ftfm, Variant::Ftpm, Variant::Rtpm, Variant::Naive] {
            let flood = flood_engine.run_query(*q, variant);
            let tree = tree_engine.run_query(*q, variant);
            assert_eq!(flood.result_ids, tree.result_ids, "{q:?} {variant}");
            assert!(
                tree.messages <= flood.messages,
                "{q:?} {variant}: tree routing sent {} messages vs flood {}",
                tree.messages,
                flood.messages
            );
            assert!(
                tree.volume_bytes <= flood.volume_bytes,
                "{q:?} {variant}: tree routing moved more bytes than flooding"
            );
        }
    }
}
