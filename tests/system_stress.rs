//! Randomized whole-system stress: networks of varying shape, skewed data
//! placement, auto index planning, and long mixed scenarios — everything
//! must stay exact.

use skypeer::core::engine::{EngineConfig, SkypeerEngine};
use skypeer::core::node::{InitQuery, SuperPeerNode};
use skypeer::core::planner::IndexPolicy;
use skypeer::core::preprocess::SuperPeerStore;
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec, WorkloadSpec};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::{LinkModel, Sim};
use skypeer::netsim::topology::TopologySpec;
use skypeer::skyline::{brute, Dominance, DominanceIndex, PointSet, Subspace};
use std::sync::Arc;

/// Skewed placement: even with 80% of the data on one super-peer, every
/// variant stays exact.
#[test]
fn skewed_data_placement_stays_exact() {
    let n_sp = 6;
    let topo = TopologySpec::paper_default(n_sp, 3).generate();
    let spec = DatasetSpec { dim: 4, points_per_peer: 40, kind: DatasetKind::Uniform, seed: 9 };
    let homes = topo.assign_peers_skewed(30, 1.5, 4);
    let mut all = PointSet::new(4);
    let mut grouped: Vec<Vec<PointSet>> = vec![Vec::new(); n_sp];
    for (peer, &home) in homes.iter().enumerate() {
        let set = spec.generate_peer(peer, home);
        all.extend_from(&set);
        grouped[home].push(set);
    }
    let stores: Vec<Arc<_>> = grouped
        .iter()
        .map(|sets| Arc::new(SuperPeerStore::preprocess(sets, 4, DominanceIndex::RTree).store))
        .collect();
    let u = Subspace::from_dims(&[0, 2]);
    let want = brute::skyline_ids(&all, u, Dominance::Standard);
    for variant in Variant::ALL {
        let nodes: Vec<SuperPeerNode> = (0..n_sp)
            .map(|sp| {
                let init = (sp == 1).then_some(InitQuery::standard(1, u, variant));
                SuperPeerNode::new(
                    sp,
                    topo.neighbors(sp).to_vec(),
                    Arc::clone(&stores[sp]),
                    DominanceIndex::Linear,
                    init,
                )
                .with_index_policy(IndexPolicy::Auto)
            })
            .collect();
        let out = Sim::new(nodes, LinkModel::paper_4kbps(), CostModel::default()).run(1);
        let answer = out.nodes.into_iter().nth(1).expect("initiator").into_outcome().expect("done");
        let mut got: Vec<u64> =
            (0..answer.result.len()).map(|i| answer.result.points().id(i)).collect();
        got.sort_unstable();
        assert_eq!(got, want, "{variant} on skewed placement");
    }
}

/// Auto index policy end-to-end: answers identical to both fixed
/// policies across a workload.
#[test]
fn auto_index_policy_is_transparent() {
    let n_superpeers = 6;
    let cfg = EngineConfig {
        n_peers: 24,
        n_superpeers,
        dataset: DatasetSpec { dim: 6, points_per_peer: 50, kind: DatasetKind::Uniform, seed: 12 },
        topology: TopologySpec::paper_default(n_superpeers, 13),
        index: DominanceIndex::RTree,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    };
    let engine = SkypeerEngine::build(cfg);
    // Drive the policy directly at node level over the engine's stores.
    let workload = WorkloadSpec { dim: 6, k: 3, queries: 5, n_superpeers, seed: 7 }.generate();
    for q in &workload {
        let fixed = engine.run_query(*q, Variant::Ftpm);
        let nodes: Vec<SuperPeerNode> = (0..n_superpeers)
            .map(|sp| {
                let init = (sp == q.initiator).then_some(InitQuery::standard(
                    77,
                    q.subspace,
                    Variant::Ftpm,
                ));
                SuperPeerNode::new(
                    sp,
                    engine.topology().neighbors(sp).to_vec(),
                    Arc::new(engine.store(sp).clone()),
                    DominanceIndex::RTree,
                    init,
                )
                .with_index_policy(IndexPolicy::Auto)
            })
            .collect();
        let out = Sim::new(nodes, LinkModel::paper_4kbps(), CostModel::default()).run(q.initiator);
        let answer = out
            .nodes
            .into_iter()
            .nth(q.initiator)
            .expect("initiator")
            .into_outcome()
            .expect("done");
        let mut got: Vec<u64> =
            (0..answer.result.len()).map(|i| answer.result.points().id(i)).collect();
        got.sort_unstable();
        assert_eq!(got, fixed.result_ids, "auto policy changed the answer for {q:?}");
    }
}

/// A long, deterministic pseudo-random gauntlet: 40 queries across
/// dataset kinds, initiators, subspaces, and variants on one engine each.
#[test]
fn long_mixed_gauntlet() {
    let kinds = [
        DatasetKind::Uniform,
        DatasetKind::Clustered { centroids_per_superpeer: 2 },
        DatasetKind::Correlated,
        DatasetKind::Anticorrelated,
    ];
    for (ki, kind) in kinds.into_iter().enumerate() {
        let n_superpeers = 6;
        let cfg = EngineConfig {
            n_peers: 18,
            n_superpeers,
            dataset: DatasetSpec { dim: 4, points_per_peer: 25, kind, seed: ki as u64 },
            topology: TopologySpec::paper_default(n_superpeers, 99 + ki as u64),
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: skypeer_core::engine::RoutingMode::Flood,
        };
        let engine = SkypeerEngine::build(cfg);
        let workload =
            WorkloadSpec { dim: 4, k: 2, queries: 10, n_superpeers, seed: 1000 + ki as u64 }
                .generate();
        for (i, q) in workload.iter().enumerate() {
            let variant = Variant::ALL[i % Variant::ALL.len()];
            let out = engine.run_query(*q, variant);
            assert_eq!(
                out.result_ids,
                engine.centralized_skyline(q.subspace),
                "kind {kind:?} query {i} variant {variant}"
            );
            assert!(out.complete);
        }
    }
}
