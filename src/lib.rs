#![warn(missing_docs)]

//! # SKYPEER — efficient subspace skyline computation over distributed data
//!
//! A full Rust reproduction of the ICDE 2007 paper by Vlachou, Doulkeridis,
//! Kotidis and Vazirgiannis. This facade crate re-exports the whole
//! workspace so that examples and downstream users need a single
//! dependency:
//!
//! * [`skyline`] — centralized skyline algorithms, the extended skyline,
//!   and the paper's Algorithms 1 and 2;
//! * [`rtree`] — the main-memory R-tree used for dominance tests;
//! * [`data`] — synthetic dataset generators and query workloads;
//! * [`netsim`] — super-peer topologies, the discrete-event network
//!   simulator, and the live threaded runtime;
//! * [`core`] — the SKYPEER protocol itself: preprocessing, the four
//!   threshold/merging variants, and the naive baseline;
//! * [`obs`] — per-query tracing, the metrics registry, JSONL/Perfetto
//!   exporters, and critical-path analysis.
//!
//! See `README.md` for a guided tour and `examples/` for runnable
//! end-to-end scenarios.
//!
//! ```
//! use skypeer::prelude::*;
//! use skypeer::core::engine::SkypeerEngine;
//! use skypeer::core::EngineConfig;
//! use skypeer::data::Query;
//!
//! let engine = SkypeerEngine::build(EngineConfig::paper_default(60, 42));
//! let query = Query { subspace: Subspace::from_dims(&[0, 2, 5]), initiator: 1 };
//! let out = engine.run_query(query, Variant::Ftpm);
//! assert_eq!(out.result_ids, engine.centralized_skyline(query.subspace)); // exact
//! ```

pub use skypeer_core as core;
pub use skypeer_data as data;
pub use skypeer_netsim as netsim;
pub use skypeer_obs as obs;
pub use skypeer_rtree as rtree;
pub use skypeer_skyline as skyline;

/// Convenience prelude pulling in the types almost every user needs.
pub mod prelude {
    pub use skypeer_core::{
        engine::{QueryMetrics, SkypeerEngine},
        variants::Variant,
    };
    pub use skypeer_data::{DatasetKind, DatasetSpec, WorkloadSpec};
    pub use skypeer_netsim::topology::TopologySpec;
    pub use skypeer_skyline::{Dominance, PointSet, Subspace};
}
