//! Explores the subspace structure of a dataset: the skycube, the
//! extended skyline's coverage of it, and how empirical sizes compare to
//! the independence theory — the analytical backbone of why SKYPEER's
//! preprocessing works.
//!
//! ```text
//! cargo run --release --example subspace_explorer
//! ```

use skypeer::data::{DatasetKind, DatasetSpec};
use skypeer::skyline::estimate::{asymptotic_skyline_size, expected_skyline_size};
use skypeer::skyline::extended::ext_skyline;
use skypeer::skyline::skycube::Skycube;
use skypeer::skyline::{DominanceIndex, Subspace};

fn main() {
    let dim = 5;
    let n = 2000;
    let spec = DatasetSpec { dim, points_per_peer: n, kind: DatasetKind::Uniform, seed: 11 };
    let set = spec.generate_peer(0, 0);
    println!("dataset: {n} uniform points, d = {dim}\n");

    // 1. The extended skyline: the only thing a peer ships.
    let ext = ext_skyline(&set, DominanceIndex::RTree);
    println!(
        "extended skyline: {} points ({:.1}% of the data)",
        ext.result.len(),
        100.0 * ext.result.len() as f64 / n as f64
    );

    // 2. The skycube: every subspace skyline, grouped by |U|.
    let cube = Skycube::compute(&set);
    println!("\nskycube ({} subspaces):", cube.len());
    for k in 1..=dim {
        let (count, total, largest) =
            Subspace::enumerate_k(dim, k).fold((0usize, 0usize, 0usize), |(c, t, l), u| {
                let s = cube.skyline(u).map_or(0, <[u64]>::len);
                (c + 1, t + s, l.max(s))
            });
        let theory = expected_skyline_size(n, k);
        println!(
            "  k={k}: {count:>2} subspaces, avg skyline {:>7.1}, max {largest:>5}, theory {:>7.1} (asymptotic {:>8.1})",
            total as f64 / count as f64,
            theory,
            asymptotic_skyline_size(n, k),
        );
    }

    // 3. Observation 4, demonstrated: the union of every subspace skyline
    //    fits inside the single ext-skyline.
    let union = cube.union_ids();
    let ext_ids: std::collections::BTreeSet<u64> =
        (0..ext.result.len()).map(|i| ext.result.points().id(i)).collect();
    let covered = union.iter().filter(|id| ext_ids.contains(id)).count();
    println!(
        "\nunion of all {} subspace skylines: {} distinct points, {} covered by the ext-skyline",
        cube.len(),
        union.len(),
        covered
    );
    assert_eq!(covered, union.len(), "Observation 4 must hold");
    println!("ext-skyline overhead beyond the union: {} points", ext.result.len() - union.len());

    // 4. Distribution contrast: the same counts on hostile data.
    for (kind, label) in
        [(DatasetKind::Correlated, "correlated"), (DatasetKind::Anticorrelated, "anticorrelated")]
    {
        let other = DatasetSpec { dim, points_per_peer: n, kind, seed: 11 }.generate_peer(0, 0);
        let e = ext_skyline(&other, DominanceIndex::RTree);
        println!(
            "\n{label}: ext-skyline {} points ({:.1}%) — independence theory would say {:.1}",
            e.result.len(),
            100.0 * e.result.len() as f64 / n as f64,
            expected_skyline_size(n, dim),
        );
    }
}
