//! Traces every protocol message of one SKYPEER query through the DES:
//! which super-peer talked to which, what kind of message, how big, and
//! when (simulated time). A compact way to *see* the spanning tree form,
//! the threshold travel, and the results flow home.
//!
//! ```text
//! cargo run --release --example trace_query [variant]
//! ```

use skypeer::core::msg::Msg;
use skypeer::core::node::{InitQuery, SuperPeerNode};
use skypeer::core::preprocess::SuperPeerStore;
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::{LinkModel, Sim};
use skypeer::netsim::topology::TopologySpec;
use skypeer::prelude::*;
use skypeer::skyline::DominanceIndex;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let variant = match std::env::args().nth(1).as_deref() {
        Some("ftfm") => Variant::Ftfm,
        Some("ftpm") | None => Variant::Ftpm,
        Some("rtfm") => Variant::Rtfm,
        Some("rtpm") => Variant::Rtpm,
        Some("naive") => Variant::Naive,
        Some(other) => {
            eprintln!("unknown variant '{other}', expected ftfm|ftpm|rtfm|rtpm|naive");
            std::process::exit(2);
        }
    };

    // A small, readable network: 6 super-peers, 2 peers each.
    let n_sp = 6;
    let topo = TopologySpec::paper_default(n_sp, 7).generate();
    let spec = DatasetSpec { dim: 4, points_per_peer: 50, kind: DatasetKind::Uniform, seed: 3 };
    let stores: Vec<Arc<_>> = (0..n_sp)
        .map(|sp| {
            let sets: Vec<_> = (0..2).map(|i| spec.generate_peer(sp * 2 + i, sp)).collect();
            Arc::new(SuperPeerStore::preprocess(&sets, 4, DominanceIndex::Linear).store)
        })
        .collect();
    println!("topology:");
    for (sp, store) in stores.iter().enumerate() {
        println!("  SP{sp} ↔ {:?}  (store: {} points)", topo.neighbors(sp), store.len());
    }

    let subspace = Subspace::from_dims(&[0, 2]);
    let initiator = 0;
    println!("\nquery: skyline on {subspace}, initiator SP{initiator}, variant {variant}\n");

    let nodes: Vec<SuperPeerNode> = (0..n_sp)
        .map(|sp| {
            let init = (sp == initiator).then_some(InitQuery::standard(1, subspace, variant));
            SuperPeerNode::new(
                sp,
                topo.neighbors(sp).to_vec(),
                Arc::clone(&stores[sp]),
                DominanceIndex::Linear,
                init,
            )
        })
        .collect();

    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let log_ref = Rc::clone(&log);
    let out = Sim::new(nodes, LinkModel::paper_4kbps(), CostModel::default())
        .with_trace_hook(move |time, from, to, raw| {
            let what = match Msg::decode(raw) {
                Some(Msg::Query { threshold, .. }) => {
                    format!("QUERY    t={threshold:.3}")
                }
                Some(Msg::Answer { done, complete, points, .. }) => format!(
                    "ANSWER   {} points{}{}",
                    points.len(),
                    if done { ", subtree done" } else { "" },
                    if complete { "" } else { ", INCOMPLETE" },
                ),
                Some(Msg::DupAck { .. }) => "DUP-ACK  (not your child)".to_string(),
                Some(Msg::ComputeLocal { .. }) => "compute  (local, deferred)".to_string(),
                Some(Msg::SampleQuery { filter, .. }) => {
                    format!("SAMPLE-Q {} filter points", filter.len())
                }
                Some(Msg::Candidates { points, .. }) => {
                    format!("CANDS    {} points", points.len())
                }
                None => "???".to_string(),
            };
            log_ref.borrow_mut().push(format!(
                "t={:>9.3}ms  SP{from} → SP{to:<2} {:>4}B  {what}",
                time as f64 / 1e6,
                raw.len(),
            ));
        })
        .run(initiator);

    for line in log.borrow().iter() {
        println!("{line}");
    }
    let answer =
        out.nodes.into_iter().nth(initiator).expect("initiator").into_outcome().expect("done");
    println!(
        "\nfinished at t={:.3}ms: {} skyline points, {} messages, {} bytes",
        out.stats.finished_at.expect("finished") as f64 / 1e6,
        answer.result.len(),
        out.stats.messages,
        out.stats.bytes,
    );
}
