//! A churn scenario end to end: peers join over time, a super-peer
//! crashes mid-service, queries run throughout (with child timeouts
//! keeping them terminating), and the crashed node eventually recovers.
//!
//! ```text
//! cargo run --release --example churn_simulation
//! ```

use skypeer::core::churn::{ChurnEvent, ChurnRunner};
use skypeer::core::Variant;
use skypeer::data::{DatasetKind, DatasetSpec, Query};
use skypeer::netsim::cost::CostModel;
use skypeer::netsim::des::LinkModel;
use skypeer::netsim::topology::TopologySpec;
use skypeer::prelude::*;
use skypeer::skyline::DominanceIndex;

fn main() {
    let n_sp = 8;
    let topo = TopologySpec::paper_default(n_sp, 5).generate();
    let mut runner = ChurnRunner::new(
        topo,
        5,
        DominanceIndex::RTree,
        CostModel::default(),
        LinkModel::paper_4kbps(),
        120_000_000_000, // 2-minute child timeout
    );
    let spec = DatasetSpec { dim: 5, points_per_peer: 100, kind: DatasetKind::Uniform, seed: 8 };
    let u = Subspace::from_dims(&[0, 2, 4]);
    let q = Query { subspace: u, initiator: 0 };

    let mut peer_no = 0usize;
    let mut join_wave = |runner: &mut ChurnRunner, how_many: usize| {
        for _ in 0..how_many {
            let sp = peer_no % n_sp;
            if runner.is_alive(sp) {
                runner.apply(ChurnEvent::PeerJoin {
                    superpeer: sp,
                    points: spec.generate_peer(peer_no, sp),
                });
            }
            peer_no += 1;
        }
    };
    let ask = |runner: &mut ChurnRunner, label: &str| {
        let r = runner
            .apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm })
            .expect("query report");
        println!(
            "{label:<28} {:>3} skyline points | complete={} exact-for-live={} | {:>8.1} ms, {:>6.1} KB",
            r.result_ids.len(),
            r.complete,
            r.exact_for_live_data,
            r.total_time_ns as f64 / 1e6,
            r.volume_bytes as f64 / 1024.0,
        );
    };

    println!("scenario: skyline on {u}, initiator SP0, FTPM, 8 super-peers\n");
    join_wave(&mut runner, 8);
    ask(&mut runner, "after first join wave (8)");
    join_wave(&mut runner, 16);
    ask(&mut runner, "after second wave (24 total)");

    println!("\n!! SP5 crashes\n");
    runner.apply(ChurnEvent::SuperPeerCrash { superpeer: 5 });
    ask(&mut runner, "degraded (SP5 down)");
    join_wave(&mut runner, 8); // joins continue on the survivors
    ask(&mut runner, "degraded + more joins");

    println!("\n!! SP5 recovers\n");
    runner.apply(ChurnEvent::SuperPeerRecover { superpeer: 5 });
    ask(&mut runner, "after recovery");

    println!("\nper-super-peer stores now:");
    for sp in 0..n_sp {
        let s = runner.store(sp);
        println!(
            "  SP{sp}: {} raw points from peers → {} stored ({} alive)",
            s.raw_points,
            s.store.len(),
            runner.is_alive(sp),
        );
    }
}
