//! Quickstart: build a small SKYPEER network, ask one subspace skyline
//! query, and inspect the answer and its cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skypeer::core::engine::SkypeerEngine;
use skypeer::prelude::*;
use skypeer_data::Query;

fn main() {
    // A 400-peer network with the paper's defaults: d = 8, 250 points per
    // peer, uniform data, DEG_sp = 4, N_sp = 5% of the peers.
    let config = skypeer::core::EngineConfig::paper_default(400, 2024);
    println!(
        "building network: {} peers, {} super-peers, d = {} ...",
        config.n_peers, config.n_superpeers, config.dataset.dim
    );
    let engine = SkypeerEngine::build(config);

    let report = engine.preprocess_report();
    println!(
        "preprocessing: {} raw points → {} uploaded (SEL_p = {:.1}%) → {} stored (SEL_sp = {:.1}%)",
        report.raw_points,
        report.uploaded_points,
        100.0 * report.sel_p(),
        report.stored_points,
        100.0 * report.sel_sp(),
    );

    // Ask for the skyline on dimensions {0, 2, 5} — e.g. price, distance,
    // noise — initiated at super-peer 3.
    let query = Query { subspace: Subspace::from_dims(&[0, 2, 5]), initiator: 3 };
    println!("\nquery: skyline on subspace {} from super-peer {}", query.subspace, query.initiator);

    for variant in Variant::ALL {
        let out = engine.run_query(query, variant);
        println!(
            "  {:>5}: {:3} skyline points | comp {:>8.3} ms | total {:>9.3} ms | {:>7.1} KB in {:>3} msgs",
            variant.mnemonic(),
            out.result_ids.len(),
            out.comp_time_ns as f64 / 1e6,
            out.total_time_ns as f64 / 1e6,
            out.volume_bytes as f64 / 1024.0,
            out.messages,
        );
    }

    // Every variant returns the exact same (provably correct) answer.
    let exact = engine.centralized_skyline(query.subspace);
    let out = engine.run_query(query, Variant::Ftpm);
    assert_eq!(out.result_ids, exact, "SKYPEER answers are exact");
    println!("\nfirst skyline points (global id → coordinates):");
    for i in 0..out.result.len().min(5) {
        println!(
            "  #{:<8} {:?}",
            out.result.points().id(i),
            out.result
                .points()
                .point(i)
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
}
