//! The paper's motivating scenario: a global hotel reservation network.
//!
//! Travel agencies (peers) advertise hotels to geographically dispersed
//! reservation servers (super-peers). Users ask skyline queries over
//! whatever criteria matter to them *this time* — price and distance for a
//! city trip, price and rating for a holiday — i.e. subspace skylines over
//! a shared 5-attribute schema. No server ever ships its full inventory:
//! only extended skylines move during preprocessing, and only
//! threshold-surviving candidates move at query time.
//!
//! ```text
//! cargo run --release --example hotel_broker
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skypeer::core::live::run_query_live;
use skypeer::core::preprocess::SuperPeerStore;
use skypeer::prelude::*;
use skypeer_skyline::DominanceIndex;
use std::sync::Arc;
use std::time::Duration;

/// Hotel attributes, all minimized: price (EUR/night), distance to the
/// center (km), noise level (0-10), 10 − rating (so better rating = lower
/// value), and years since renovation.
const ATTRS: [&str; 5] = ["price", "distance", "noise", "inv-rating", "age"];

fn synth_hotels(rng: &mut StdRng, n: usize, base_id: u64) -> skypeer_skyline::PointSet {
    let mut set = skypeer_skyline::PointSet::new(5);
    for i in 0..n {
        // Correlations with trade-offs: central hotels are pricier and
        // noisier; well-rated ones are pricier; renovation reduces age and
        // raises price.
        let centrality = rng.gen::<f64>(); // 0 = city center
        let quality = rng.gen::<f64>(); // 0 = excellent
        let price =
            40.0 + 260.0 * (1.0 - centrality) * (1.0 - 0.5 * quality) + rng.gen_range(0.0..40.0);
        let distance = 0.2 + 14.0 * centrality + rng.gen_range(0.0..1.0);
        let noise = (8.0 * (1.0 - centrality) + rng.gen_range(0.0..2.0)).min(10.0);
        let inv_rating = 10.0 * quality;
        let age = rng.gen_range(0.0..30.0) * (0.3 + 0.7 * quality);
        set.push(&[price, distance, noise, inv_rating, age], base_id + i as u64);
    }
    set
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Six reservation servers (super-peers) on a small backbone, each with
    // a handful of subscribed travel agencies (peers).
    let topology = TopologySpec::paper_default(6, 99).generate();
    let agencies_per_server = 4;
    let hotels_per_agency = 400;

    let mut stores = Vec::new();
    let mut total_hotels = 0usize;
    let mut total_uploaded = 0usize;
    for server in 0..topology.len() {
        let agencies: Vec<_> = (0..agencies_per_server)
            .map(|a| {
                let base = ((server * agencies_per_server + a) * hotels_per_agency) as u64;
                synth_hotels(&mut rng, hotels_per_agency, base)
            })
            .collect();
        let store = SuperPeerStore::preprocess(&agencies, 5, DominanceIndex::RTree);
        total_hotels += store.raw_points;
        total_uploaded += store.uploaded_points;
        println!(
            "server {server}: {} hotels from {} agencies → {} uploaded → {} stored",
            store.raw_points,
            agencies_per_server,
            store.uploaded_points,
            store.store.len()
        );
        stores.push(Arc::new(store.store));
    }
    println!(
        "\nnetwork total: {total_hotels} hotels, {total_uploaded} uploaded ({:.1}%)\n",
        100.0 * total_uploaded as f64 / total_hotels as f64
    );

    // Three customers with different criteria, i.e. different subspaces.
    let scenarios: [(&str, &[usize]); 3] = [
        ("city trip: cheap and central", &[0, 1]),
        ("family holiday: cheap, quiet, well rated", &[0, 2, 3]),
        ("business: central, well rated, recently renovated", &[1, 3, 4]),
    ];

    for (label, dims) in scenarios {
        let u = Subspace::from_dims(dims);
        let attrs: Vec<&str> = dims.iter().map(|&d| ATTRS[d]).collect();
        let out = run_query_live(
            &topology,
            &stores,
            u,
            0,
            Variant::Ftpm,
            DominanceIndex::RTree,
            Duration::from_secs(30),
        )
        .expect("query completes");
        println!("» {label}  (minimize {attrs:?})");
        println!(
            "  {} undominated hotels out of {total_hotels} ({} KB moved, {} messages)",
            out.result_ids.len(),
            out.stats.bytes / 1024,
            out.stats.messages
        );
        for i in 0..out.result.len().min(4) {
            let p = out.result.points().point(i);
            let view: Vec<String> =
                dims.iter().map(|&d| format!("{}={:.1}", ATTRS[d], p[d])).collect();
            println!("    hotel #{:<6} {}", out.result.points().id(i), view.join("  "));
        }
        println!();
    }
}
