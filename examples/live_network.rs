//! Runs SKYPEER on the live threaded runtime — one OS thread per
//! super-peer, real crossbeam channels — and cross-checks every answer
//! against the deterministic DES.
//!
//! ```text
//! cargo run --release --example live_network
//! cargo run --release --example live_network -- --metrics-file /tmp/skypeer.prom
//! cargo run --release --example live_network -- --metrics-file /tmp/skypeer.prom \
//!     --history-out /tmp/skypeer.history.jsonl
//! ```
//!
//! With `--metrics-file PATH` every node thread reports into a shared
//! tracer and a background sampler keeps flushing a Prometheus text
//! snapshot to PATH (atomically, every 250 ms) while the queries run.
//! Adding `--history-out FILE` also records one telemetry sample per
//! flush tick into FILE — replay it with `skypeer-cli top --replay FILE`.

use skypeer::core::engine::SkypeerEngine;
use skypeer::core::live::run_query_live_traced;
use skypeer::core::EngineConfig;
use skypeer::obs::{MemTracer, Sampler, Tracer};
use skypeer::prelude::*;
use skypeer_data::Query;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path_flag = |name: &str| match args.iter().position(|a| a == name) {
        Some(p) => match args.get(p + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("error: {name} needs a path");
                std::process::exit(1);
            }
        },
        None => None,
    };
    let metrics_file = path_flag("--metrics-file");
    let history_out = path_flag("--history-out");
    if history_out.is_some() && metrics_file.is_none() {
        eprintln!("error: --history-out needs --metrics-file (the sampler drives both)");
        std::process::exit(1);
    }
    let tracer: Option<Arc<MemTracer>> = metrics_file.is_some().then(Arc::<MemTracer>::default);
    let sampler = metrics_file.as_ref().map(|path| {
        let t = Arc::clone(tracer.as_ref().expect("tracer exists when a path was given"));
        let interval = Duration::from_millis(250);
        let started = if history_out.is_some() {
            Sampler::start_with_history(t, path.clone(), interval)
        } else {
            Sampler::start(t, path.clone(), interval)
        };
        started.unwrap_or_else(|e| {
            eprintln!("error: cannot write metrics file {path}: {e}");
            std::process::exit(1);
        })
    });

    let config = EngineConfig::paper_default(200, 31);
    println!(
        "building {}-peer network ({} super-peer threads) ...",
        config.n_peers, config.n_superpeers
    );
    let engine = SkypeerEngine::build(config);
    let stores: Vec<Arc<_>> =
        (0..config.n_superpeers).map(|sp| Arc::new(engine.store(sp).clone())).collect();

    let workload = WorkloadSpec {
        dim: config.dataset.dim,
        k: 3,
        queries: 5,
        n_superpeers: config.n_superpeers,
        seed: 3,
    }
    .generate();

    for (i, q) in workload.iter().enumerate() {
        let des = engine.run_query(*q, Variant::Rtpm);
        let live = run_query_live_traced(
            engine.topology(),
            &stores,
            q.subspace,
            q.initiator,
            Variant::Rtpm,
            config.index,
            Duration::from_secs(30),
            tracer.clone().map(|t| t as Arc<dyn Tracer>),
            sampler.as_ref(),
        )
        .expect("live query completes");
        assert_eq!(
            des.result_ids, live.result_ids,
            "threaded execution must agree with the simulator"
        );
        println!(
            "query {i}: U={} from SP{} → {} skyline points | live wall time {:?}, {} msgs | DES total {:.2} ms",
            q.subspace,
            q.initiator,
            live.result_ids.len(),
            live.stats.elapsed,
            live.stats.messages,
            des.total_time_ns as f64 / 1e6,
        );
        let _ = Query { subspace: q.subspace, initiator: q.initiator };
    }
    println!("\nall live answers match the DES — the protocol is schedule-independent");
    if let Some(s) = sampler {
        let path = s.path().display().to_string();
        let flushes = s.flushes();
        let history = s.history_text();
        s.finish().expect("final metrics flush succeeds");
        println!("metrics: {} snapshots flushed to {path}", flushes + 1);
        if let (Some(out), Some(text)) = (&history_out, history) {
            std::fs::write(out, &text).expect("history file writes");
            println!(
                "history: {} samples recorded to {out} (replay: skypeer-cli top --replay {out})",
                text.lines().count()
            );
        }
    }
}
