//! Runs SKYPEER on the live threaded runtime — one OS thread per
//! super-peer, real crossbeam channels — and cross-checks every answer
//! against the deterministic DES.
//!
//! ```text
//! cargo run --release --example live_network
//! ```

use skypeer::core::engine::SkypeerEngine;
use skypeer::core::live::run_query_live;
use skypeer::core::EngineConfig;
use skypeer::prelude::*;
use skypeer_data::Query;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let config = EngineConfig::paper_default(200, 31);
    println!(
        "building {}-peer network ({} super-peer threads) ...",
        config.n_peers, config.n_superpeers
    );
    let engine = SkypeerEngine::build(config);
    let stores: Vec<Arc<_>> =
        (0..config.n_superpeers).map(|sp| Arc::new(engine.store(sp).clone())).collect();

    let workload = WorkloadSpec {
        dim: config.dataset.dim,
        k: 3,
        queries: 5,
        n_superpeers: config.n_superpeers,
        seed: 3,
    }
    .generate();

    for (i, q) in workload.iter().enumerate() {
        let des = engine.run_query(*q, Variant::Rtpm);
        let live = run_query_live(
            engine.topology(),
            &stores,
            q.subspace,
            q.initiator,
            Variant::Rtpm,
            config.index,
            Duration::from_secs(30),
        )
        .expect("live query completes");
        assert_eq!(
            des.result_ids, live.result_ids,
            "threaded execution must agree with the simulator"
        );
        println!(
            "query {i}: U={} from SP{} → {} skyline points | live wall time {:?}, {} msgs | DES total {:.2} ms",
            q.subspace,
            q.initiator,
            live.result_ids.len(),
            live.stats.elapsed,
            live.stats.messages,
            des.total_time_ns as f64 / 1e6,
        );
        let _ = Query { subspace: q.subspace, initiator: q.initiator };
    }
    println!("\nall live answers match the DES — the protocol is schedule-independent");
}
