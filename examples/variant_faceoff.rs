//! Head-to-head of the four SKYPEER variants against the naive baseline
//! across growing network sizes — a miniature of the paper's scalability
//! study (Figures 3(f), 4(b), 4(c)).
//!
//! ```text
//! cargo run --release --example variant_faceoff [n_peers...]
//! ```

use skypeer::core::engine::{QueryMetrics, SkypeerEngine};
use skypeer::core::EngineConfig;
use skypeer::prelude::*;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![200, 400, 800]
        } else {
            args
        }
    };

    for n_peers in sizes {
        let config = EngineConfig::paper_default(n_peers, 1234);
        let engine = SkypeerEngine::build(config);
        let workload = WorkloadSpec {
            dim: config.dataset.dim,
            k: 3,
            queries: 10,
            n_superpeers: config.n_superpeers,
            seed: 5,
        }
        .generate();

        println!(
            "\n=== {n_peers} peers / {} super-peers / {} points ===",
            config.n_superpeers,
            engine.preprocess_report().raw_points
        );
        println!(
            "{:>6}  {:>12}  {:>12}  {:>10}  {:>9}",
            "variant", "comp (ms)", "total (ms)", "vol (KB)", "msgs"
        );

        let mut naive_total = f64::NAN;
        for variant in Variant::ALL {
            let m = QueryMetrics::from_outcomes(&engine.run_workload(&workload, variant));
            if variant == Variant::Naive {
                naive_total = m.avg_total_time_ns;
            }
            println!(
                "{:>6}  {:>12.3}  {:>12.3}  {:>10.1}  {:>9.1}",
                variant.mnemonic(),
                m.avg_comp_time_ns / 1e6,
                m.avg_total_time_ns / 1e6,
                m.avg_volume_bytes / 1024.0,
                m.avg_messages,
            );
        }
        for variant in Variant::SKYPEER {
            let m = QueryMetrics::from_outcomes(&engine.run_workload(&workload, variant));
            println!(
                "  speed-up of {} over naive (total time): {:.1}x",
                variant.mnemonic(),
                naive_total / m.avg_total_time_ns
            );
        }
    }
}
