//! Concurrent query load: several subspace skyline queries in flight at
//! once, sharing super-peer compute and 4 KB/s links. Compares the batch
//! makespan against running the same queries back-to-back, and profiles
//! where the work concentrated.
//!
//! ```text
//! cargo run --release --example concurrent_load [batch_size]
//! ```

use skypeer::core::engine::{EngineConfig, SkypeerEngine};
use skypeer::core::Variant;
use skypeer::data::Query;
use skypeer::prelude::*;

fn main() {
    let max_batch: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let engine = SkypeerEngine::build(EngineConfig::paper_default(400, 11));
    let n_sp = engine.config().n_superpeers;
    println!(
        "network: {} peers / {n_sp} super-peers; variant FTPM; batch sizes 1..={max_batch}\n",
        engine.config().n_peers
    );
    println!("{:>6}  {:>14}  {:>12}  {:>8}", "batch", "makespan (ms)", "serial (ms)", "speedup");
    let mut size = 1;
    while size <= max_batch {
        let wl = WorkloadSpec {
            dim: engine.config().dataset.dim,
            k: 3,
            queries: size,
            n_superpeers: n_sp,
            seed: size as u64,
        }
        .generate();
        let batch: Vec<(Query, Variant)> = wl.iter().map(|q| (*q, Variant::Ftpm)).collect();
        let out = engine.run_concurrent(&batch);
        let serial: u64 =
            wl.iter().map(|q| engine.run_query(*q, Variant::Ftpm).total_time_ns).sum();
        println!(
            "{:>6}  {:>14.1}  {:>12.1}  {:>7.2}x",
            size,
            out.makespan_ns as f64 / 1e6,
            serial as f64 / 1e6,
            serial as f64 / out.makespan_ns as f64,
        );
        size *= 2;
    }

    // Where does one query's work actually land? Fixed merging funnels
    // everything into the initiator; progressive merging spreads it.
    println!("\nper-query profile (initiator = SP0):");
    let q = Query { subspace: Subspace::from_dims(&[1, 3, 5]), initiator: 0 };
    for variant in [Variant::Ftfm, Variant::Ftpm] {
        let p = engine.profile_query(q, variant);
        let (hot_node, hot_ns) = p.breakdown.hottest_node().expect("nodes exist");
        let ((from, to), hot_bytes) = p.breakdown.hottest_link().expect("links used");
        println!(
            "  {}: initiator does {:.1}% of all compute, takes {:.1} KB inbound of {:.1} KB total; hottest node SP{hot_node} ({:.2} ms), hottest link SP{from}→SP{to} ({:.1} KB)",
            variant.mnemonic(),
            100.0 * p.initiator_compute_share,
            p.initiator_inbound_bytes as f64 / 1024.0,
            p.total_bytes as f64 / 1024.0,
            hot_ns as f64 / 1e6,
            hot_bytes as f64 / 1024.0,
        );
    }
}
